#include "core/trace_cache.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "core/simulator.h"
#include "util/crc32c.h"
#include "util/failpoint.h"
#include "vm/interpreter.h"

namespace bioperf::core {

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

std::string
TraceKey::str() const
{
    std::string s = app ? app->name : "?";
    s += '/';
    s += apps::toString(variant);
    s += '/';
    s += apps::toString(scale);
    s += "/seed";
    s += std::to_string(seed);
    if (registerPressure) {
        s += "/regs";
        s += std::to_string(intRegs);
        s += '-';
        s += std::to_string(fpRegs);
    }
    return s;
}

void
TraceCache::Stats::addStagesTo(util::RunManifest &manifest) const
{
    if (records > 0)
        manifest.addStage("trace_record", recordSeconds,
                          recordedInstructions);
    if (replayedInstructions > 0)
        manifest.addStage("trace_replay", replaySeconds,
                          replayedInstructions);
}

void
TraceCache::Stats::addFailuresTo(util::RunManifest &manifest) const
{
    for (const Incident &inc : incidents)
        manifest.addFailure(inc.key, "", inc.stage, inc.error);
}

util::StatusOr<TraceCache::Ptr>
TraceCache::record(const TraceKey &key)
{
    if (BIOPERF_FAILPOINT("cache.record.fail"))
        return util::Status::unavailable(
            "fail point cache.record.fail fired");
    if (!key.app)
        return util::Status::invalidArgument(
            "trace key has no application");
    try {
        auto ct = std::make_shared<CachedTrace>();
        apps::AppRun run =
            key.app->make(key.variant, key.scale, key.seed);
        if (key.registerPressure)
            ct->spills = Simulator::applyRegisterPressure(
                run, key.intRegs, key.fpRegs);
        vm::TraceRecorder recorder(*run.prog);
        vm::Interpreter interp(*run.prog);
        interp.addSink(&recorder);
        run.driver(interp);
        ct->verified = run.verify();
        ct->instructions = interp.totalInstrs();
        ct->trace = recorder.finish();
        ct->prog = std::move(run.prog);
        return Ptr(std::move(ct));
    } catch (const util::StatusError &e) {
        util::Status s = e.status();
        return s.withContext("recording " + key.str());
    } catch (const std::exception &e) {
        return util::Status::internal(e.what()).withContext(
            "recording " + key.str());
    }
}

util::StatusOr<TraceCache::Ptr>
TraceCache::obtain(const TraceKey &key)
{
    const std::string k = key.str();
    std::promise<util::StatusOr<Ptr>> promise;
    std::shared_future<util::StatusOr<Ptr>> fut;
    bool recording = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(k);
        if (it != entries_.end()) {
            stats_.hits++;
            fut = it->second;
        } else {
            // Single-flight: publish the future before recording so
            // concurrent workers for the same workload block on it
            // instead of recording twice.
            recording = true;
            fut = promise.get_future().share();
            entries_.emplace(k, fut);
        }
    }
    if (!recording)
        return fut.get();
    const double t0 = now();
    util::StatusOr<Ptr> got = record(key);
    if (!got.ok()) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            stats_.recordRetries++;
        }
        got = record(key);
    }
    const double dt = now() - t0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (got.ok()) {
            stats_.records++;
            stats_.recordSeconds += dt;
            stats_.recordedInstructions += got.value()->instructions;
        } else {
            // Waiters blocked on the future still receive the
            // failure; dropping the entry lets a later obtain()
            // re-attempt instead of caching the error forever.
            stats_.recordFailures++;
            stats_.incidents.push_back(
                Incident{ "trace_record", k, got.status().str() });
            entries_.erase(k);
        }
    }
    promise.set_value(got);
    return got;
}

TraceCache::Ptr
TraceCache::lookup(const TraceKey &key) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key.str());
    if (it == entries_.end())
        return nullptr;
    if (it->second.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready)
        return nullptr;
    const util::StatusOr<Ptr> &got = it->second.get();
    return got.ok() ? got.value() : nullptr;
}

void
TraceCache::insert(const TraceKey &key, Ptr trace)
{
    std::promise<util::StatusOr<Ptr>> promise;
    promise.set_value(util::StatusOr<Ptr>(std::move(trace)));
    std::lock_guard<std::mutex> lock(mu_);
    entries_[key.str()] = promise.get_future().share();
}

void
TraceCache::quarantine(const TraceKey &key, const util::Status &why)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (entries_.erase(key.str()) != 0) {
        stats_.quarantined++;
        stats_.incidents.push_back(
            Incident{ "trace_quarantine", key.str(), why.str() });
    }
}

void
TraceCache::noteLiveFallback(const TraceKey &key,
                             const util::Status &why)
{
    std::lock_guard<std::mutex> lock(mu_);
    stats_.liveFallbacks++;
    stats_.incidents.push_back(
        Incident{ "live_fallback", key.str(), why.str() });
}

void
TraceCache::erase(const TraceKey &key)
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.erase(key.str());
}

void
TraceCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
}

size_t
TraceCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

size_t
TraceCache::totalBytes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    size_t n = 0;
    for (const auto &[name, fut] : entries_) {
        if (fut.wait_for(std::chrono::seconds(0)) ==
            std::future_status::ready) {
            const util::StatusOr<Ptr> &got = fut.get();
            if (got.ok() && got.value())
                n += got.value()->trace.totalBytes();
        }
    }
    return n;
}

TraceCache::Stats
TraceCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
TraceCache::noteReplay(double seconds, uint64_t instructions)
{
    std::lock_guard<std::mutex> lock(mu_);
    stats_.replaySeconds += seconds;
    stats_.replayedInstructions += instructions;
}

// --- .bptrace persistence ---------------------------------------------
//
// Layout (all integers little-endian, host-endian in practice):
//   u8[8]  magic "bptrace\0"
//   u32    version (kTraceFileVersion)
//   u8     variant, u8 scale, u8 registerPressure, u8 verified
//   u32    intRegs, u32 fpRegs
//   u64    seed
//   u32    sidLimit          (fingerprint of the recording program)
//   u64    runs
//   u64    instructions      (up front, so streaming readers know
//                             the expected count before the chunks)
//   u32    spills
//   u32    keyframeInterval  (random-access cadence)
//   u32    appNameLen, bytes
//   u32    numChunks
//   chunk: u32 numEvents, u32 bitmapOffset, u64 startSeq,
//          u8 flags (v3: bit0 = gapBefore),
//          u32 byteLen, u32 payloadCrc (v3), bytes
//   u64    instructions      (trailer: decoded-count cross-check)
//   u32    metaCrc           (v3: CRC32C over every byte above except
//                             chunk payloads, which carry their own)
//   u32    end magic "BPTE"
//
// v1 lacked the header instruction count, keyframe interval and
// per-chunk start seqs; v1 files are rejected (re-record them). v2
// files (no flags, payload CRCs or metadata digest) remain readable;
// integrity verification is skipped for them.
//
// Splitting integrity into per-chunk payload CRCs plus one metadata
// digest lets open() prove the framing genuine during its index scan
// — which never reads payload bytes — while next() proves each
// payload as it actually streams off disk; and it is exactly the
// granularity salvage needs to tell intact chunks from damaged ones.

namespace {

constexpr char kTraceMagic[8] = { 'b', 'p', 't', 'r', 'a', 'c', 'e',
                                  '\0' };
constexpr uint32_t kTraceFileVersion = 3;
constexpr uint32_t kTraceFileVersionV2 = 2;
constexpr uint32_t kTraceEndMagic = 0x45545042; // "BPTE"
constexpr uint8_t kChunkFlagGapBefore = 1u << 0;

struct FileCloser
{
    void operator()(FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};
using FilePtr = std::unique_ptr<FILE, FileCloser>;

bool
writeBytes(FILE *f, const void *p, size_t n)
{
    return std::fwrite(p, 1, n, f) == n;
}

bool
readBytes(FILE *f, void *p, size_t n)
{
    return std::fread(p, 1, n, f) == n;
}

template <typename T>
bool
readScalar(FILE *f, T &v)
{
    return readBytes(f, &v, sizeof(v));
}

/**
 * Writes metadata bytes while folding them into the file digest;
 * payload bytes go through writeBytes() directly (they carry their
 * own per-chunk CRC).
 */
struct MetaWriter
{
    FILE *f;
    uint32_t crc = 0;
    bool ok = true;

    void bytes(const void *p, size_t n)
    {
        crc = util::crc32cExtend(crc, p, n);
        ok = ok && writeBytes(f, p, n);
    }
    template <typename T> void scalar(T v) { bytes(&v, sizeof(v)); }
};

/**
 * Reads metadata bytes while folding them into the running digest
 * for the v3 cross-check (harmlessly accumulated for v2 too).
 */
struct MetaReader
{
    FILE *f;
    uint32_t crc = 0;

    bool bytes(void *p, size_t n)
    {
        if (!readBytes(f, p, n))
            return false;
        crc = util::crc32cExtend(crc, p, n);
        return true;
    }
    template <typename T> bool scalar(T &v)
    {
        return bytes(&v, sizeof(v));
    }
};

/** Counts onRunEnd() calls during the load-time validation replay. */
struct RunCountSink : vm::TraceSink
{
    uint64_t runs = 0;
    void onInstr(const vm::DynInstr &) override {}
    void onBatch(const vm::DynInstr *, size_t) override {}
    void onRunEnd() override { runs++; }
};

} // namespace

util::Status
saveTraceFile(const std::string &path, const TraceKey &key,
              const CachedTrace &trace)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        return util::Status::ioError("cannot open '" + path +
                                     "' for writing");
    const std::string app_name = key.app ? key.app->name : "";
    MetaWriter w{ f.get() };
    w.bytes(kTraceMagic, sizeof(kTraceMagic));
    w.scalar(kTraceFileVersion);
    w.scalar(static_cast<uint8_t>(key.variant));
    w.scalar(static_cast<uint8_t>(key.scale));
    w.scalar(static_cast<uint8_t>(key.registerPressure ? 1 : 0));
    w.scalar(static_cast<uint8_t>(trace.verified ? 1 : 0));
    w.scalar(key.intRegs);
    w.scalar(key.fpRegs);
    w.scalar(key.seed);
    w.scalar(trace.trace.sidLimit());
    w.scalar(trace.trace.runs());
    w.scalar(trace.trace.instructions());
    w.scalar(trace.spills);
    w.scalar(trace.trace.keyframeInterval());
    w.scalar(static_cast<uint32_t>(app_name.size()));
    w.bytes(app_name.data(), app_name.size());
    w.scalar(static_cast<uint32_t>(trace.trace.chunks().size()));
    for (const auto &chunk : trace.trace.chunks()) {
        if (!w.ok)
            break;
        w.scalar(chunk.numEvents);
        w.scalar(chunk.bitmapOffset);
        w.scalar(chunk.startSeq);
        w.scalar(static_cast<uint8_t>(
            chunk.gapBefore ? kChunkFlagGapBefore : 0));
        w.scalar(static_cast<uint32_t>(chunk.bytes.size()));
        w.scalar(util::crc32c(chunk.bytes.data(), chunk.bytes.size()));
        if (BIOPERF_FAILPOINT("trace.write.short")) {
            // Simulate the write being cut off mid-payload (disk
            // full, signal): report the failure and leave the
            // truncated file behind, exactly what salvage must cope
            // with.
            writeBytes(f.get(), chunk.bytes.data(),
                       chunk.bytes.size() / 2);
            return util::Status::ioError(
                "short write to '" + path +
                "' (fail point trace.write.short)");
        }
        if (BIOPERF_FAILPOINT("codec.chunk.corrupt") &&
            !chunk.bytes.empty()) {
            // Flip one payload bit after its CRC was computed: the
            // save reports success, and the mismatch is only
            // detectable by the reader's checksum pass.
            std::vector<uint8_t> tainted = chunk.bytes;
            tainted[0] ^= 0x01;
            w.ok = w.ok && writeBytes(f.get(), tainted.data(),
                                      tainted.size());
        } else {
            w.ok = w.ok && writeBytes(f.get(), chunk.bytes.data(),
                                      chunk.bytes.size());
        }
    }
    w.scalar(trace.trace.instructions());
    const uint32_t meta_crc = w.crc;
    w.ok = w.ok && writeBytes(f.get(), &meta_crc, sizeof(meta_crc));
    w.ok = w.ok &&
           writeBytes(f.get(), &kTraceEndMagic, sizeof(kTraceEndMagic));
    FILE *raw = f.release();
    if (std::fclose(raw) != 0)
        w.ok = false;
    if (!w.ok)
        return util::Status::ioError("write to '" + path + "' failed");
    return {};
}

// --- TraceFileStream --------------------------------------------------

TraceFileStream::~TraceFileStream()
{
    if (file_)
        std::fclose(file_);
}

util::Status
TraceFileStream::open(const std::string &path)
{
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
    index_.clear();
    next_chunk_ = 0;

    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return util::Status::notFound("cannot open '" + path + "'");

    MetaReader r{ f.get() };
    char magic[8];
    if (!r.bytes(magic, sizeof(magic)))
        return util::Status::corruptData("truncated file (no header)");
    if (std::memcmp(magic, kTraceMagic, sizeof(magic)) != 0)
        return util::Status::corruptData(
            "not a .bptrace file (bad magic)");
    uint32_t version = 0;
    if (!r.scalar(version))
        return util::Status::corruptData("truncated file (no version)");
    if (version != kTraceFileVersion && version != kTraceFileVersionV2)
        return util::Status::corruptData(
            "unsupported .bptrace version " + std::to_string(version) +
            " (expected " + std::to_string(kTraceFileVersionV2) +
            " or " + std::to_string(kTraceFileVersion) + ")");
    has_integrity_ = version == kTraceFileVersion;

    uint8_t variant = 0, scale = 0, reg_pressure = 0, verified = 0;
    uint32_t int_regs = 0, fp_regs = 0;
    uint32_t name_len = 0, num_chunks = 0;
    uint64_t seed = 0;
    if (!r.scalar(variant) || !r.scalar(scale) ||
        !r.scalar(reg_pressure) || !r.scalar(verified) ||
        !r.scalar(int_regs) || !r.scalar(fp_regs) || !r.scalar(seed) ||
        !r.scalar(sid_limit_) || !r.scalar(runs_) ||
        !r.scalar(instructions_) || !r.scalar(spills_) ||
        !r.scalar(keyframe_interval_) || !r.scalar(name_len))
        return util::Status::corruptData(
            "truncated file (incomplete identity block)");
    if (keyframe_interval_ == 0)
        return util::Status::corruptData(
            "zero keyframe interval (corrupt header)");
    if (name_len > 4096)
        return util::Status::corruptData(
            "implausible app name length (corrupt header)");
    std::string app_name(name_len, '\0');
    if (!r.bytes(app_name.data(), name_len) || !r.scalar(num_chunks))
        return util::Status::corruptData(
            "truncated file (incomplete identity block)");
    verified_ = verified != 0;

    key_ = TraceKey{};
    key_.app = apps::findApp(app_name);
    if (!key_.app)
        return util::Status::notFound(
            "trace was recorded for unknown application '" + app_name +
            "'");
    key_.variant = static_cast<apps::Variant>(variant);
    key_.scale = static_cast<apps::Scale>(scale);
    key_.seed = seed;
    key_.registerPressure = reg_pressure != 0;
    key_.intRegs = int_regs;
    key_.fpRegs = fp_regs;

    // Index pass: read each chunk's framing, skip its payload. After
    // this the reader knows every chunk's offset without having held
    // any payload bytes.
    index_.reserve(num_chunks);
    uint64_t event_instr_bound = 0;
    for (uint32_t i = 0; i < num_chunks; i++) {
        ChunkInfo info;
        uint8_t flags = 0;
        if (!r.scalar(info.numEvents) || !r.scalar(info.bitmapOffset) ||
            !r.scalar(info.startSeq) ||
            (has_integrity_ && !r.scalar(flags)) ||
            !r.scalar(info.byteLen) ||
            (has_integrity_ && !r.scalar(info.crc)))
            return util::Status::corruptData(
                "truncated chunk header (chunk " + std::to_string(i) +
                " of " + std::to_string(num_chunks) + ")");
        info.gapBefore = (flags & kChunkFlagGapBefore) != 0;
        if (info.bitmapOffset > info.byteLen)
            return util::Status::corruptData(
                "chunk bitmap offset beyond payload (corrupt framing)");
        const long pos = std::ftell(f.get());
        if (pos < 0)
            return util::Status::ioError("cannot tell position in '" +
                                         path + "'");
        info.offset = static_cast<uint64_t>(pos);
        if (std::fseek(f.get(), static_cast<long>(info.byteLen),
                       SEEK_CUR) != 0)
            return util::Status::corruptData(
                "truncated chunk payload (chunk " + std::to_string(i) +
                ")");
        event_instr_bound += info.numEvents;
        index_.push_back(info);
    }
    uint64_t trailer_instructions = 0;
    uint32_t end_magic = 0;
    if (!r.scalar(trailer_instructions))
        return util::Status::corruptData("truncated file (no trailer)");
    const uint32_t computed_meta_crc = r.crc;
    if (has_integrity_) {
        uint32_t meta_crc = 0;
        if (!readScalar(f.get(), meta_crc))
            return util::Status::corruptData(
                "truncated file (no metadata digest)");
        if (meta_crc != computed_meta_crc)
            return util::Status::corruptData(
                "metadata digest mismatch (corrupt header, framing or "
                "trailer)");
    }
    if (!readScalar(f.get(), end_magic))
        return util::Status::corruptData("truncated file (no trailer)");
    if (end_magic != kTraceEndMagic)
        return util::Status::corruptData(
            "bad trailer magic (corrupt or truncated file)");
    if (trailer_instructions != instructions_)
        return util::Status::corruptData(
            "trailer instruction count disagrees with the header "
            "(corrupt file)");
    if (instructions_ + runs_ != event_instr_bound)
        return util::Status::corruptData(
            "instruction count disagrees with chunk framing (corrupt "
            "file)");

    file_ = f.release();
    return seekToChunk(0);
}

util::Status
TraceFileStream::seekToChunk(size_t idx)
{
    if (!file_)
        return util::Status::failedPrecondition("stream is not open");
    if (idx > index_.size())
        return util::Status::invalidArgument("chunk index out of range");
    next_chunk_ = idx;
    return {};
}

bool
TraceFileStream::next(vm::EncodedTrace::Chunk &chunk,
                      util::Status &error)
{
    if (next_chunk_ >= index_.size())
        return false;
    const ChunkInfo &info = index_[next_chunk_];
    if (std::fseek(file_, static_cast<long>(info.offset), SEEK_SET) !=
        0) {
        error = util::Status::ioError("cannot seek to chunk " +
                                      std::to_string(next_chunk_));
        return false;
    }
    chunk.numEvents = info.numEvents;
    chunk.bitmapOffset = info.bitmapOffset;
    chunk.startSeq = info.startSeq;
    chunk.keyframe = isKeyframe(next_chunk_);
    chunk.gapBefore = info.gapBefore;
    chunk.bytes.resize(info.byteLen);
    if (!readBytes(file_, chunk.bytes.data(), info.byteLen)) {
        error = util::Status::ioError("truncated chunk payload (chunk " +
                                      std::to_string(next_chunk_) + ")");
        return false;
    }
    if (has_integrity_ &&
        util::crc32c(chunk.bytes.data(), chunk.bytes.size()) !=
            info.crc) {
        error = util::Status::corruptData(
            "payload checksum mismatch (chunk " +
            std::to_string(next_chunk_) + ")");
        return false;
    }
    next_chunk_++;
    return true;
}

util::Status
buildReplayProgram(const TraceKey &key, uint32_t sid_limit,
                   std::unique_ptr<ir::Program> &out)
{
    if (!key.app)
        return util::Status::invalidArgument(
            "trace has no application identity");
    try {
        apps::AppRun run =
            key.app->make(key.variant, key.scale, key.seed);
        if (key.registerPressure)
            Simulator::applyRegisterPressure(run, key.intRegs,
                                             key.fpRegs);
        if (run.prog->sidLimit() != sid_limit)
            return util::Status::failedPrecondition(
                "rebuilt program has a different sid space than the "
                "recording (version skew between the trace and this "
                "build)");
        out = std::move(run.prog);
        return {};
    } catch (const util::StatusError &e) {
        util::Status s = e.status();
        return s.withContext("rebuilding replay program for " +
                             key.str());
    }
}

TraceLoadResult
loadTraceFile(const std::string &path)
{
    TraceLoadResult res;
    auto fail = [&res, &path](util::Status why) {
        res.trace = nullptr;
        res.status =
            std::move(why).withContext("loading '" + path + "'");
        return res;
    };

    TraceFileStream stream;
    if (util::Status s = stream.open(path); !s.ok())
        return fail(std::move(s));
    res.key = stream.key();

    auto ct = std::make_shared<CachedTrace>();
    ct->verified = stream.verified();
    ct->spills = stream.spills();
    ct->instructions = stream.instructions();
    ct->trace.setSidLimit(stream.sidLimit());
    ct->trace.setKeyframeInterval(stream.keyframeInterval());
    ct->trace.setCounts(stream.instructions(), stream.runs());
    if (util::Status s =
            buildReplayProgram(res.key, stream.sidLimit(), ct->prog);
        !s.ok())
        return fail(std::move(s));

    // Single pass: each chunk is decode-validated (proving every
    // varint terminates) as it streams off disk, then moved into the
    // in-memory trace.
    RunCountSink counter;
    vm::TraceReplayer validator(*ct->prog);
    validator.addSink(&counter);
    validator.beginStream(0);
    vm::EncodedTrace::Chunk chunk;
    util::Status stream_error;
    while (stream.next(chunk, stream_error)) {
        if (util::Status s = validator.streamChunk(chunk); !s.ok())
            return fail(std::move(s));
        ct->trace.appendChunk(std::move(chunk));
        chunk = vm::EncodedTrace::Chunk{};
    }
    if (!stream_error.ok())
        return fail(std::move(stream_error));
    const uint64_t decoded = validator.endStream();
    if (decoded != stream.instructions() ||
        counter.runs != stream.runs())
        return fail(util::Status::corruptData(
            "decoded event counts disagree with the trailer (corrupt "
            "payload)"));

    res.trace = std::move(ct);
    return res;
}

// --- Salvage ----------------------------------------------------------

TraceSalvageResult
salvageTraceFile(const std::string &path)
{
    TraceSalvageResult res;
    auto fail = [&res, &path](util::Status why) {
        res.trace = nullptr;
        res.status =
            std::move(why).withContext("salvaging '" + path + "'");
        return res;
    };

    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return fail(
            util::Status::notFound("cannot open '" + path + "'"));

    // The header is required: without the recipe there is no program
    // to replay against, so a damaged identity block is beyond
    // salvage. Everything after it is read tolerantly.
    char magic[8];
    if (!readBytes(f.get(), magic, sizeof(magic)) ||
        std::memcmp(magic, kTraceMagic, sizeof(magic)) != 0)
        return fail(util::Status::corruptData(
            "not a .bptrace file (bad magic); header is beyond "
            "salvage"));
    uint32_t version = 0;
    if (!readScalar(f.get(), version) ||
        (version != kTraceFileVersion && version != kTraceFileVersionV2))
        return fail(util::Status::corruptData(
            "unsupported or corrupt version field"));
    const bool has_integrity = version == kTraceFileVersion;

    uint8_t variant = 0, scale = 0, reg_pressure = 0, verified = 0;
    uint32_t int_regs = 0, fp_regs = 0;
    uint32_t name_len = 0, num_chunks = 0;
    uint64_t seed = 0;
    uint32_t sid_limit = 0, spills = 0, keyframe_interval = 0;
    uint64_t runs = 0, instructions = 0;
    if (!readScalar(f.get(), variant) || !readScalar(f.get(), scale) ||
        !readScalar(f.get(), reg_pressure) ||
        !readScalar(f.get(), verified) ||
        !readScalar(f.get(), int_regs) ||
        !readScalar(f.get(), fp_regs) || !readScalar(f.get(), seed) ||
        !readScalar(f.get(), sid_limit) || !readScalar(f.get(), runs) ||
        !readScalar(f.get(), instructions) ||
        !readScalar(f.get(), spills) ||
        !readScalar(f.get(), keyframe_interval) ||
        !readScalar(f.get(), name_len))
        return fail(util::Status::corruptData(
            "truncated identity block; header is beyond salvage"));
    if (keyframe_interval == 0 || name_len > 4096)
        return fail(util::Status::corruptData(
            "implausible identity block; header is beyond salvage"));
    std::string app_name(name_len, '\0');
    if (!readBytes(f.get(), app_name.data(), name_len) ||
        !readScalar(f.get(), num_chunks))
        return fail(util::Status::corruptData(
            "truncated identity block; header is beyond salvage"));

    res.key = TraceKey{};
    res.key.app = apps::findApp(app_name);
    if (!res.key.app)
        return fail(util::Status::notFound(
            "trace was recorded for unknown application '" + app_name +
            "'"));
    res.key.variant = static_cast<apps::Variant>(variant);
    res.key.scale = static_cast<apps::Scale>(scale);
    res.key.seed = seed;
    res.key.registerPressure = reg_pressure != 0;
    res.key.intRegs = int_regs;
    res.key.fpRegs = fp_regs;
    res.totalInstructions = instructions;

    // Tolerant chunk scan. Framing fields are not individually
    // checksummed, so a bit flip inside framing desynchronizes every
    // later file offset; the scan stops at the first implausible
    // record or short read and salvages what was read cleanly before
    // it. A flip inside a *payload* only damages that chunk (v3 CRC
    // catches it; v2 relies on decode validation below).
    struct RawChunk
    {
        vm::EncodedTrace::Chunk data;
        bool good = false;
    };
    std::vector<RawChunk> raw;
    for (uint32_t i = 0; i < num_chunks; i++) {
        uint32_t num_events = 0, bitmap_offset = 0, byte_len = 0;
        uint32_t crc = 0;
        uint64_t start_seq = 0;
        uint8_t flags = 0;
        if (!readScalar(f.get(), num_events) ||
            !readScalar(f.get(), bitmap_offset) ||
            !readScalar(f.get(), start_seq) ||
            (has_integrity && !readScalar(f.get(), flags)) ||
            !readScalar(f.get(), byte_len) ||
            (has_integrity && !readScalar(f.get(), crc)))
            break; // truncated framing: nothing after is addressable
        if (bitmap_offset > byte_len ||
            num_events > vm::TraceRecorder::kChunkEvents ||
            byte_len > (1u << 28))
            break; // desynchronized framing
        RawChunk rc;
        rc.data.numEvents = num_events;
        rc.data.bitmapOffset = bitmap_offset;
        rc.data.startSeq = start_seq;
        rc.data.keyframe = (i % keyframe_interval) == 0;
        rc.data.gapBefore = false;
        rc.data.bytes.resize(byte_len);
        if (!readBytes(f.get(), rc.data.bytes.data(), byte_len)) {
            // Truncated mid-payload; this chunk is lost and nothing
            // follows it.
            raw.push_back(std::move(rc));
            break;
        }
        rc.good =
            !has_integrity ||
            util::crc32c(rc.data.bytes.data(), rc.data.bytes.size()) ==
                crc;
        raw.push_back(std::move(rc));
    }
    res.totalChunks = std::max<size_t>(num_chunks, raw.size());

    std::unique_ptr<ir::Program> prog;
    if (util::Status s = buildReplayProgram(res.key, sid_limit, prog);
        !s.ok())
        return fail(std::move(s));

    // Keep only keyframe-aligned groups whose every chunk is intact:
    // each kept group spans exactly keyframe_interval chunks (the
    // trailing group may be shorter — nothing follows it), so the
    // salvaged chunk vector preserves the modulo-K keyframe geometry
    // that replayRange() and the sampling shard planner rely on.
    auto ct = std::make_shared<CachedTrace>();
    ct->prog = std::move(prog);
    ct->verified = false; // the golden verdict covered the full stream
    ct->spills = spills;
    ct->trace.setSidLimit(sid_limit);
    ct->trace.setKeyframeInterval(keyframe_interval);

    RunCountSink counter;
    vm::TraceReplayer validator(*ct->prog);
    validator.addSink(&counter);

    uint64_t recovered_instrs = 0;
    uint64_t recovered_runs = 0;
    size_t last_kept_group = 0;
    bool kept_any = false;
    const size_t k = keyframe_interval;
    for (size_t g = 0; g * k < raw.size(); g++) {
        const size_t begin = g * k;
        const size_t end = std::min(raw.size(), begin + k);
        bool all_good = true;
        for (size_t i = begin; i < end; i++)
            all_good = all_good && raw[i].good;
        // Any damage drops the whole group: a partial interior group
        // would shift later keyframes off their modulo positions, and
        // a chunk after a damaged one cannot be decoded anyway (delta
        // state only resets at group starts).
        if (!all_good)
            continue;
        // Decode validation: checksums prove the bytes, this proves
        // the encoding (and, for v2 files, is the only corruption
        // check).
        const uint64_t runs_before = counter.runs;
        validator.beginStream(raw[begin].data.startSeq);
        bool decode_ok = true;
        for (size_t i = begin; i < end && decode_ok; i++)
            decode_ok = validator.streamChunk(raw[i].data).ok();
        const uint64_t delivered = validator.endStream();
        if (!decode_ok) {
            counter.runs = runs_before; // sinks saw a doomed prefix
            continue;
        }
        if (kept_any && g != last_kept_group + 1) {
            raw[begin].data.gapBefore = true;
            res.gaps++;
        }
        for (size_t i = begin; i < end; i++)
            ct->trace.appendChunk(std::move(raw[i].data));
        recovered_instrs += delivered;
        recovered_runs += counter.runs - runs_before;
        res.recoveredChunks += end - begin;
        last_kept_group = g;
        kept_any = true;
    }
    res.lostChunks = res.totalChunks - res.recoveredChunks;
    res.recoveredInstructions = recovered_instrs;
    res.lostInstructions =
        res.totalInstructions > recovered_instrs
            ? res.totalInstructions - recovered_instrs
            : 0;

    if (!kept_any)
        return fail(util::Status::corruptData(
            "no intact keyframe-aligned region survives"));

    ct->instructions = recovered_instrs;
    ct->trace.setCounts(recovered_instrs, recovered_runs);
    res.trace = std::move(ct);
    res.status = util::Status();
    return res;
}

} // namespace bioperf::core
