#ifndef BIOPERF_CORE_TRACE_CACHE_H_
#define BIOPERF_CORE_TRACE_CACHE_H_

#include <cstdint>
#include <cstdio>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "apps/app.h"
#include "util/metrics.h"
#include "util/status.h"
#include "vm/trace_codec.h"

namespace bioperf::core {

/**
 * Workload identity of a recorded trace. Two jobs may share a trace
 * iff every field matches: the app factory is deterministic in
 * (variant, scale, seed), and the register-pressure rewrite — the
 * only pre-run program mutation the simulator performs — changes the
 * dynamic stream, so the platform's architectural register file is
 * part of the identity whenever the rewrite is applied. Caches and
 * predictors are *not* part of the key: they are sinks, and the trace
 * is pure functional execution.
 */
struct TraceKey
{
    const apps::AppInfo *app = nullptr;
    apps::Variant variant = apps::Variant::Baseline;
    apps::Scale scale = apps::Scale::Small;
    uint64_t seed = 42;
    /** Register-pressure rewrite applied before recording. */
    bool registerPressure = false;
    uint32_t intRegs = 0;
    uint32_t fpRegs = 0;

    /**
     * Canonical string form, used as the cache map key and in
     * manifests; app identity is by name (AppInfo objects may be
     * registry copies).
     */
    std::string str() const;
};

/**
 * One recorded workload: the encoded stream plus the program it was
 * recorded from (replayed DynInstr entries point into this program,
 * so it must outlive every replay) and the run's golden-model
 * verdict. Replaying skips functional execution, so the verdict is
 * captured once at record time and reused — same recipe, same
 * deterministic outcome.
 */
struct CachedTrace
{
    std::unique_ptr<ir::Program> prog;
    vm::EncodedTrace trace;
    bool verified = false;
    uint64_t instructions = 0;
    /** Spill instructions inserted by the register-pressure rewrite. */
    uint32_t spills = 0;
};

/**
 * Keyed store of recorded traces for record-once/replay-many sweeps.
 *
 * Thread-safe and single-flight: concurrent obtain() calls for one
 * key block until the single recording finishes, then share the same
 * immutable CachedTrace. Simulator::sweep()/characterizeSweep() use
 * an ephemeral per-call cache by default (recording only workloads
 * shared by ≥2 jobs, evicted after their last use); benches hold a
 * persistent instance to reuse recordings across calls.
 *
 * Failure semantics: a recording that fails is retried once inside
 * the same single-flight slot; if the retry also fails, every waiter
 * receives the Status and the entry is dropped so a later obtain()
 * re-attempts instead of replaying a poisoned future forever.
 * quarantine() evicts an entry whose payload failed decode so the
 * next lookup re-records rather than looping on corrupt data.
 */
class TraceCache
{
  public:
    using Ptr = std::shared_ptr<const CachedTrace>;

    /** One degradation event, for run-manifest `failures` entries. */
    struct Incident
    {
        std::string stage; ///< "trace_record", "trace_quarantine", ...
        std::string key;   ///< TraceKey::str() of the workload
        std::string error; ///< formatted Status
    };

    /** Aggregate record/replay cost, for RunManifest stages. */
    struct Stats
    {
        uint64_t records = 0;
        uint64_t hits = 0;
        double recordSeconds = 0.0;
        uint64_t recordedInstructions = 0;
        double replaySeconds = 0.0;
        uint64_t replayedInstructions = 0;
        /** Recordings retried after a first failure. */
        uint64_t recordRetries = 0;
        /** Recordings that failed even after the retry. */
        uint64_t recordFailures = 0;
        /** Entries evicted because their payload failed decode. */
        uint64_t quarantined = 0;
        /** Sweep jobs that fell back to live execution. */
        uint64_t liveFallbacks = 0;
        std::vector<Incident> incidents;

        /**
         * Appends "trace_record" / "trace_replay" stages (wall time +
         * instructions, hence effective MIPS) when non-empty, so
         * BENCH artifacts separate capture cost from analysis cost.
         */
        void addStagesTo(util::RunManifest &manifest) const;

        /** Appends one manifest failure entry per incident. */
        void addFailuresTo(util::RunManifest &manifest) const;
    };

    /**
     * Returns the trace for @a key, recording it on first use
     * (build the app run, apply the register-pressure rewrite if the
     * key asks for it, interpret the full workload once with a
     * TraceRecorder attached, verify against the golden model). A
     * failed recording is retried once; a persistent failure is
     * returned to every waiter and the entry is dropped.
     */
    util::StatusOr<Ptr> obtain(const TraceKey &key);

    /** The cached trace, or null when absent, failed or recording. */
    Ptr lookup(const TraceKey &key) const;

    /** Registers an externally produced trace (e.g. a loaded file). */
    void insert(const TraceKey &key, Ptr trace);

    /**
     * Evicts @a key because its payload failed decode (@a why), so
     * the next obtain() re-records instead of replaying corrupt data.
     */
    void quarantine(const TraceKey &key, const util::Status &why);

    /** Records that a sweep job degraded to live execution. */
    void noteLiveFallback(const TraceKey &key, const util::Status &why);

    void erase(const TraceKey &key);
    void clear();

    size_t size() const;
    /** Encoded bytes across all resident traces. */
    size_t totalBytes() const;

    Stats stats() const;
    /** Accounts one replay's cost (called by the replay paths). */
    void noteReplay(double seconds, uint64_t instructions);

    /**
     * One-shot record with no caching or retry (CLI --trace-out,
     * benches). Fails with kUnavailable under the cache.record.fail
     * fail point and surfaces interpreter/regalloc invariant errors
     * as statuses instead of terminating.
     */
    static util::StatusOr<Ptr> record(const TraceKey &key);

  private:
    mutable std::mutex mu_;
    std::unordered_map<std::string,
                       std::shared_future<util::StatusOr<Ptr>>>
        entries_;
    Stats stats_;
};

/**
 * On-disk .bptrace persistence. The file stores the *recipe* (app,
 * variant, scale, seed, register file) plus the encoded chunks — not
 * the program, which the loader rebuilds deterministically from the
 * registry and validates by sid-space fingerprint. Layout: versioned
 * header, identity block, per-chunk framing, trailer (see
 * trace_cache.cc for the field list). v3 adds a CRC32C per chunk
 * payload, per-chunk flags, and a whole-file metadata digest; v2
 * files are still readable (without integrity checks).
 */

/**
 * Writes @a trace as a v3 .bptrace. kIoError on open/write failure
 * (including a short write forced by the trace.write.short fail
 * point); the file contents are unspecified after a failure.
 */
util::Status saveTraceFile(const std::string &path, const TraceKey &key,
                           const CachedTrace &trace);

struct TraceLoadResult
{
    TraceKey key;
    TraceCache::Ptr trace;
    /** OK on success; on failure @a trace is null. */
    util::Status status;
};

/**
 * Loads, validates (magic, version, chunk framing, checksums, trailer
 * count, full decode) and re-materializes the replay program for a
 * saved trace. Built on TraceFileStream, so validation decodes each
 * chunk as it streams off disk in a single pass.
 */
TraceLoadResult loadTraceFile(const std::string &path);

/**
 * Best-effort recovery from a truncated or bit-flipped .bptrace.
 * The header must be intact (it holds the recipe; without it there is
 * nothing to replay against). Chunks are re-scanned tolerantly, each
 * keyframe-aligned group whose chunks all pass checksum + decode
 * validation is kept, and everything else is dropped; the surviving
 * groups form a gap-marked in-memory trace that replays and samples
 * through the normal APIs (cores drain on each gap via
 * TraceSink::onGap()). The salvaged trace's verified flag is always
 * false — the golden-model verdict applied to the full stream, not
 * to a subset.
 */
struct TraceSalvageResult
{
    TraceKey key;
    /** Salvaged trace; null when nothing was recoverable. */
    TraceCache::Ptr trace;
    /** Instruction count the header claimed. */
    uint64_t totalInstructions = 0;
    uint64_t recoveredInstructions = 0;
    uint64_t lostInstructions = 0;
    size_t totalChunks = 0;
    size_t recoveredChunks = 0;
    size_t lostChunks = 0;
    /** Discontinuities in the salvaged stream (onGap() sites). */
    size_t gaps = 0;
    /** OK when at least one keyframe region was recovered. */
    util::Status status;
};

TraceSalvageResult salvageTraceFile(const std::string &path);

/**
 * Rebuilds the replay program for @a key from the app registry and
 * checks its sid space against @a sid_limit, the recording's
 * fingerprint. Shared by loadTraceFile() and the streaming consumers
 * (bioperfsim --trace-in, file-based sampling).
 */
util::Status buildReplayProgram(const TraceKey &key, uint32_t sid_limit,
                                std::unique_ptr<ir::Program> &out);

/**
 * Chunk-at-a-time .bptrace reader. open() validates the header,
 * scans the chunk framing into an in-memory index (payloads are
 * skipped, not read), and cross-checks the trailer — for v3 files
 * this includes the whole-file metadata digest — so a valid stream
 * never holds more than one chunk's bytes in memory, and
 * seekToChunk() gives random access at keyframe granularity for
 * sampled replay. next() verifies each v3 chunk's payload CRC32C as
 * it is read.
 *
 * Decode validation is NOT performed here; consumers decode through
 * TraceReplayer, which reports corrupt payloads as statuses.
 */
class TraceFileStream
{
  public:
    TraceFileStream() = default;
    ~TraceFileStream();

    TraceFileStream(const TraceFileStream &) = delete;
    TraceFileStream &operator=(const TraceFileStream &) = delete;

    /**
     * Opens and validates @a path, leaving the reader positioned at
     * chunk 0.
     */
    util::Status open(const std::string &path);

    /** Workload identity (app resolved against the registry). */
    const TraceKey &key() const { return key_; }
    uint32_t sidLimit() const { return sid_limit_; }
    uint64_t instructions() const { return instructions_; }
    uint64_t runs() const { return runs_; }
    uint32_t spills() const { return spills_; }
    bool verified() const { return verified_; }
    uint32_t keyframeInterval() const { return keyframe_interval_; }
    /** True for v3 files (per-chunk CRCs + metadata digest). */
    bool hasIntegrity() const { return has_integrity_; }

    size_t numChunks() const { return index_.size(); }
    uint64_t chunkStartSeq(size_t idx) const
    {
        return index_[idx].startSeq;
    }
    uint32_t chunkNumEvents(size_t idx) const
    {
        return index_[idx].numEvents;
    }
    bool isKeyframe(size_t idx) const
    {
        return idx % keyframe_interval_ == 0;
    }

    /** Positions the reader at chunk @a idx (must be < numChunks()). */
    util::Status seekToChunk(size_t idx);

    /**
     * Reads the chunk at the current position into @a chunk (reusing
     * its buffer), verifies its payload CRC on v3 files, and
     * advances. @return false at end of the chunk list or on failure
     * (@a error is set only for failures: kIoError for short reads,
     * kCorruptData for checksum mismatches).
     */
    bool next(vm::EncodedTrace::Chunk &chunk, util::Status &error);

  private:
    struct ChunkInfo
    {
        uint64_t offset = 0; ///< file offset of the payload bytes
        uint64_t startSeq = 0;
        uint32_t numEvents = 0;
        uint32_t bitmapOffset = 0;
        uint32_t byteLen = 0;
        uint32_t crc = 0; ///< payload CRC32C (v3)
        bool gapBefore = false;
    };

    std::FILE *file_ = nullptr;
    std::vector<ChunkInfo> index_;
    size_t next_chunk_ = 0;
    TraceKey key_;
    uint32_t sid_limit_ = 0;
    uint64_t instructions_ = 0;
    uint64_t runs_ = 0;
    uint32_t spills_ = 0;
    bool verified_ = false;
    uint32_t keyframe_interval_ = 1;
    bool has_integrity_ = false;
};

} // namespace bioperf::core

#endif // BIOPERF_CORE_TRACE_CACHE_H_
