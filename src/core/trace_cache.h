#ifndef BIOPERF_CORE_TRACE_CACHE_H_
#define BIOPERF_CORE_TRACE_CACHE_H_

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "apps/app.h"
#include "util/metrics.h"
#include "vm/trace_codec.h"

namespace bioperf::core {

/**
 * Workload identity of a recorded trace. Two jobs may share a trace
 * iff every field matches: the app factory is deterministic in
 * (variant, scale, seed), and the register-pressure rewrite — the
 * only pre-run program mutation the simulator performs — changes the
 * dynamic stream, so the platform's architectural register file is
 * part of the identity whenever the rewrite is applied. Caches and
 * predictors are *not* part of the key: they are sinks, and the trace
 * is pure functional execution.
 */
struct TraceKey
{
    const apps::AppInfo *app = nullptr;
    apps::Variant variant = apps::Variant::Baseline;
    apps::Scale scale = apps::Scale::Small;
    uint64_t seed = 42;
    /** Register-pressure rewrite applied before recording. */
    bool registerPressure = false;
    uint32_t intRegs = 0;
    uint32_t fpRegs = 0;

    /**
     * Canonical string form, used as the cache map key and in
     * manifests; app identity is by name (AppInfo objects may be
     * registry copies).
     */
    std::string str() const;
};

/**
 * One recorded workload: the encoded stream plus the program it was
 * recorded from (replayed DynInstr entries point into this program,
 * so it must outlive every replay) and the run's golden-model
 * verdict. Replaying skips functional execution, so the verdict is
 * captured once at record time and reused — same recipe, same
 * deterministic outcome.
 */
struct CachedTrace
{
    std::unique_ptr<ir::Program> prog;
    vm::EncodedTrace trace;
    bool verified = false;
    uint64_t instructions = 0;
    /** Spill instructions inserted by the register-pressure rewrite. */
    uint32_t spills = 0;
};

/**
 * Keyed store of recorded traces for record-once/replay-many sweeps.
 *
 * Thread-safe and single-flight: concurrent obtain() calls for one
 * key block until the single recording finishes, then share the same
 * immutable CachedTrace. Simulator::sweep()/characterizeSweep() use
 * an ephemeral per-call cache by default (recording only workloads
 * shared by ≥2 jobs, evicted after their last use); benches hold a
 * persistent instance to reuse recordings across calls.
 */
class TraceCache
{
  public:
    using Ptr = std::shared_ptr<const CachedTrace>;

    /** Aggregate record/replay cost, for RunManifest stages. */
    struct Stats
    {
        uint64_t records = 0;
        uint64_t hits = 0;
        double recordSeconds = 0.0;
        uint64_t recordedInstructions = 0;
        double replaySeconds = 0.0;
        uint64_t replayedInstructions = 0;

        /**
         * Appends "trace_record" / "trace_replay" stages (wall time +
         * instructions, hence effective MIPS) when non-empty, so
         * BENCH artifacts separate capture cost from analysis cost.
         */
        void addStagesTo(util::RunManifest &manifest) const;
    };

    /**
     * Returns the trace for @a key, recording it on first use
     * (build the app run, apply the register-pressure rewrite if the
     * key asks for it, interpret the full workload once with a
     * TraceRecorder attached, verify against the golden model).
     */
    Ptr obtain(const TraceKey &key);

    /** The cached trace, or null when absent or still recording. */
    Ptr lookup(const TraceKey &key) const;

    /** Registers an externally produced trace (e.g. a loaded file). */
    void insert(const TraceKey &key, Ptr trace);

    void erase(const TraceKey &key);
    void clear();

    size_t size() const;
    /** Encoded bytes across all resident traces. */
    size_t totalBytes() const;

    Stats stats() const;
    /** Accounts one replay's cost (called by the replay paths). */
    void noteReplay(double seconds, uint64_t instructions);

    /** One-shot record with no caching (CLI --trace-out, benches). */
    static Ptr record(const TraceKey &key);

  private:
    mutable std::mutex mu_;
    std::unordered_map<std::string, std::shared_future<Ptr>> entries_;
    Stats stats_;
};

/**
 * On-disk .bptrace persistence. The file stores the *recipe* (app,
 * variant, scale, seed, register file) plus the encoded chunks — not
 * the program, which the loader rebuilds deterministically from the
 * registry and validates by sid-space fingerprint. Layout: versioned
 * header, identity block, per-chunk framing, instruction-count
 * trailer (see trace_cache.cc for the exact field list).
 */

/** @return empty string on success, else a diagnostic. */
std::string saveTraceFile(const std::string &path, const TraceKey &key,
                          const CachedTrace &trace);

struct TraceLoadResult
{
    TraceKey key;
    TraceCache::Ptr trace;
    /** Empty on success; on failure @a trace is null. */
    std::string error;
};

/**
 * Loads, validates (magic, version, chunk framing, trailer count,
 * full decode) and re-materializes the replay program for a saved
 * trace.
 */
TraceLoadResult loadTraceFile(const std::string &path);

} // namespace bioperf::core

#endif // BIOPERF_CORE_TRACE_CACHE_H_
