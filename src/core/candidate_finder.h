#ifndef BIOPERF_CORE_CANDIDATE_FINDER_H_
#define BIOPERF_CORE_CANDIDATE_FINDER_H_

#include <vector>

#include "apps/app.h"
#include "profile/per_load.h"

namespace bioperf::core {

/**
 * The Section 3 candidate-identification methodology, operationalized:
 * profile every static load (frequency, L1 miss rate, misprediction
 * rate of the following branch, source mapping), then rank the
 * frequently executed loads that lead to or follow hard-to-predict
 * branches — those are the ones whose L1 hit latency is worth hiding
 * by source-level scheduling.
 */
class CandidateFinder
{
  public:
    struct Params
    {
        /** Minimum share of dynamic loads to be "frequent". */
        double minFrequency = 0.005;
        /** Following-branch misprediction threshold ("hard"). */
        double minBranchMissRate = 0.05;
        size_t maxCandidates = 32;
    };

    CandidateFinder() = default;

    explicit CandidateFinder(const Params &params) : params_(params) {}

    /**
     * Runs the application's workload with the per-load profiler and
     * returns the full profile of the @a top_n hottest static loads
     * (the Table 5 view).
     */
    std::vector<profile::PerLoadProfiler::Entry>
    profileLoads(apps::AppRun &run, size_t top_n = 20);

    /**
     * The ranked optimization candidates: frequent loads whose
     * following branch mispredicts at least minBranchMissRate,
     * ordered by frequency x misprediction product.
     */
    std::vector<profile::PerLoadProfiler::Entry>
    findCandidates(apps::AppRun &run);

  private:
    Params params_;
};

} // namespace bioperf::core

#endif // BIOPERF_CORE_CANDIDATE_FINDER_H_
