#include "core/transform_pipeline.h"

#include <cctype>
#include <set>
#include <string>

#include "vm/interpreter.h"

namespace bioperf::core {

namespace {

size_t
staticLoads(const ir::Function &fn)
{
    return fn.numInstrsOfClass(ir::InstrClass::Load) +
           fn.numInstrsOfClass(ir::InstrClass::FpLoad);
}

} // namespace

TransformPipeline::Report
TransformPipeline::analyze(const apps::AppInfo &app, apps::Scale scale,
                           uint64_t seed)
{
    Report rep;
    rep.app = app.name;

    apps::AppRun base = app.make(apps::Variant::Baseline, scale, seed);
    apps::AppRun xform =
        app.make(apps::Variant::Transformed, scale, seed);

    rep.baselineStaticInstrs = base.kernel->numInstrs();
    rep.transformedStaticInstrs = xform.kernel->numInstrs();
    rep.baselineStaticLoads = staticLoads(*base.kernel);
    rep.transformedStaticLoads = staticLoads(*xform.kernel);
    rep.baselineStaticBranches =
        base.kernel->numInstrsOfClass(ir::InstrClass::CondBranch);
    rep.transformedStaticBranches =
        xform.kernel->numInstrsOfClass(ir::InstrClass::CondBranch);

    // Footprint of the transformation: distinct source-level loads
    // (line, array) pairs and distinct lines carrying tags in the
    // transformed kernel's hot region. Counting distinct pairs (with
    // double-buffered row names normalized) collapses the loop
    // duplication the IR performs, matching Table 6's source-level
    // accounting.
    std::set<int32_t> lines;
    std::set<std::pair<int32_t, std::string>> load_sites;
    for (const auto &bb : xform.kernel->blocks) {
        for (const auto &in : bb.instrs) {
            if (in.line < 0)
                continue;
            lines.insert(in.line);
            if (!ir::isLoad(in.op))
                continue;
            std::string region = "?";
            if (in.mem.region >= 0 &&
                in.mem.region <
                    static_cast<int32_t>(xform.prog->numRegions())) {
                region = xform.prog->region(in.mem.region).name;
                while (!region.empty() &&
                       std::isdigit(
                           static_cast<unsigned char>(region.back())))
                    region.pop_back();
            }
            load_sites.insert({ in.line, region });
        }
    }
    rep.staticLoadsConsidered =
        static_cast<uint32_t>(load_sites.size());
    rep.linesInvolved = static_cast<uint32_t>(lines.size());

    // Functional equivalence: both variants must match the golden
    // model on the same workload (hence each other).
    {
        vm::Interpreter interp(*base.prog);
        base.driver(interp);
        rep.baselineVerified = base.verify();
    }
    {
        vm::Interpreter interp(*xform.prog);
        xform.driver(interp);
        rep.transformedVerified = xform.verify();
    }
    return rep;
}

std::vector<TransformPipeline::Report>
TransformPipeline::analyzeAll(apps::Scale scale, uint64_t seed)
{
    std::vector<Report> out;
    for (const auto &app : apps::transformableApps())
        out.push_back(analyze(app, scale, seed));
    return out;
}

} // namespace bioperf::core
