#include "core/simulator.h"

#include "cpu/inorder_core.h"
#include "cpu/ooo_core.h"
#include "regalloc/linear_scan.h"
#include "vm/interpreter.h"

namespace bioperf::core {

CharacterizationResult
Simulator::characterize(apps::AppRun &run)
{
    CharacterizationResult res;
    res.mix = std::make_unique<profile::InstructionMixProfiler>();
    res.coverage = std::make_unique<profile::LoadCoverageProfiler>();
    res.cache = std::make_unique<profile::CacheProfiler>();
    res.loadBranch = std::make_unique<profile::LoadBranchProfiler>();

    vm::Interpreter interp(*run.prog);
    interp.addSink(res.mix.get());
    interp.addSink(res.coverage.get());
    interp.addSink(res.cache.get());
    interp.addSink(res.loadBranch.get());
    run.driver(interp);
    res.instructions = interp.totalInstrs();
    res.verified = run.verify();
    return res;
}

TimingResult
Simulator::time(apps::AppRun &run, const cpu::PlatformConfig &platform)
{
    TimingResult res;
    mem::CacheHierarchy caches = platform.makeHierarchy();
    auto predictor = platform.makePredictor();

    vm::Interpreter interp(*run.prog);
    if (platform.core.outOfOrder) {
        cpu::OooCore core(platform.core, &caches, predictor.get());
        interp.addSink(&core);
        run.driver(interp);
        res.cycles = core.cycles();
        res.instructions = core.instructions();
        res.mispredicts = core.branchMispredictions();
        res.ipc = core.ipc();
        res.seconds = core.seconds();
    } else {
        cpu::InorderCore core(platform.core, &caches, predictor.get());
        interp.addSink(&core);
        run.driver(interp);
        res.cycles = core.cycles();
        res.instructions = core.instructions();
        res.mispredicts = core.branchMispredictions();
        res.ipc = core.ipc();
        res.seconds = core.seconds();
    }
    res.verified = run.verify();
    return res;
}

uint32_t
Simulator::applyRegisterPressure(apps::AppRun &run,
                                 const cpu::PlatformConfig &platform)
{
    uint32_t spills = 0;
    for (size_t f = 0; f < run.prog->numFunctions(); f++) {
        const regalloc::AllocResult r = regalloc::allocate(
            *run.prog, run.prog->function(f),
            platform.core.numIntRegs, platform.core.numFpRegs);
        spills += r.spillInstrs;
    }
    run.prog->renumber();
    return spills;
}

double
Simulator::speedup(const apps::AppInfo &app,
                   const cpu::PlatformConfig &platform,
                   apps::Scale scale, uint64_t seed,
                   TimingResult *baseline_out,
                   TimingResult *transformed_out)
{
    apps::AppRun base = app.make(apps::Variant::Baseline, scale, seed);
    apps::AppRun xform =
        app.make(apps::Variant::Transformed, scale, seed);
    applyRegisterPressure(base, platform);
    applyRegisterPressure(xform, platform);
    const TimingResult tb = time(base, platform);
    const TimingResult tx = time(xform, platform);
    if (baseline_out)
        *baseline_out = tb;
    if (transformed_out)
        *transformed_out = tx;
    return tx.cycles == 0
               ? 0.0
               : static_cast<double>(tb.cycles) /
                     static_cast<double>(tx.cycles);
}

} // namespace bioperf::core
