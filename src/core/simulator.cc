#include "core/simulator.h"

#include <atomic>
#include <chrono>
#include <future>
#include <unordered_map>

#include "cpu/inorder_core.h"
#include "cpu/ooo_core.h"
#include "regalloc/linear_scan.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"
#include "vm/interpreter.h"
#include "vm/trace_codec.h"

namespace bioperf::core {

CharacterizationResult
Simulator::characterize(apps::AppRun &run)
{
    CharacterizationResult res;
    res.mixProfiler =
        std::make_unique<profile::InstructionMixProfiler>();
    res.coverageProfiler =
        std::make_unique<profile::LoadCoverageProfiler>();
    res.cacheProfiler = std::make_unique<profile::CacheProfiler>();
    res.loadBranchProfiler =
        std::make_unique<profile::LoadBranchProfiler>();

    vm::Interpreter interp(*run.prog);
    interp.addSink(res.mixProfiler.get());
    interp.addSink(res.coverageProfiler.get());
    interp.addSink(res.cacheProfiler.get());
    interp.addSink(res.loadBranchProfiler.get());
    try {
        run.driver(interp);
        res.verified = run.verify();
    } catch (const util::StatusError &e) {
        res.status = e.status();
    }
    res.instructions = interp.totalInstrs();
    res.mix = res.mixProfiler->summary();
    res.coverage = res.coverageProfiler->summary();
    res.cache = res.cacheProfiler->summary();
    res.loadBranch = res.loadBranchProfiler->summary();
    return res;
}

util::json::Value
CharacterizationResult::report() const
{
    util::json::Value v = util::json::Value::object();
    v["instructions"] = instructions;
    v["verified"] = verified;
    v["mix"] = mix.report();
    v["coverage"] = coverage.report();
    v["cache"] = cache.report();
    v["load_branch"] = loadBranch.report();
    return v;
}

util::json::Value
TimingResult::report() const
{
    util::json::Value v = util::json::Value::object();
    v["cycles"] = cycles;
    v["instructions"] = instructions;
    v["mispredicts"] = mispredicts;
    v["ipc"] = ipc;
    v["seconds"] = seconds;
    v["verified"] = verified;
    return v;
}

util::json::Value
SpeedupResult::report() const
{
    util::json::Value v = util::json::Value::object();
    v["baseline"] = baseline.report();
    v["transformed"] = transformed.report();
    v["speedup"] = speedup;
    v["verified"] = verified();
    return v;
}

TimingResult
Simulator::time(apps::AppRun &run, const cpu::PlatformConfig &platform)
{
    TimingResult res;
    mem::CacheHierarchy caches = platform.makeHierarchy();
    auto predictor = platform.makePredictor();

    vm::Interpreter interp(*run.prog);
    auto drive = [&run, &interp]() -> util::Status {
        try {
            run.driver(interp);
            return {};
        } catch (const util::StatusError &e) {
            return e.status();
        }
    };
    if (platform.core.outOfOrder) {
        cpu::OooCore core(platform.core, &caches, predictor.get());
        interp.addSink(&core);
        res.status = drive();
        res.cycles = core.cycles();
        res.instructions = core.instructions();
        res.mispredicts = core.branchMispredictions();
        res.ipc = core.ipc();
        res.seconds = core.seconds();
    } else {
        cpu::InorderCore core(platform.core, &caches, predictor.get());
        interp.addSink(&core);
        res.status = drive();
        res.cycles = core.cycles();
        res.instructions = core.instructions();
        res.mispredicts = core.branchMispredictions();
        res.ipc = core.ipc();
        res.seconds = core.seconds();
    }
    if (res.status.ok())
        res.verified = run.verify();
    return res;
}

uint32_t
Simulator::applyRegisterPressure(apps::AppRun &run,
                                 const cpu::PlatformConfig &platform)
{
    return applyRegisterPressure(run, platform.core.numIntRegs,
                                 platform.core.numFpRegs);
}

uint32_t
Simulator::applyRegisterPressure(apps::AppRun &run, uint32_t int_regs,
                                 uint32_t fp_regs)
{
    uint32_t spills = 0;
    for (size_t f = 0; f < run.prog->numFunctions(); f++) {
        const regalloc::AllocResult r =
            regalloc::allocate(*run.prog, run.prog->function(f),
                               int_regs, fp_regs);
        spills += r.spillInstrs;
    }
    run.prog->renumber();
    return spills;
}

CharacterizationResult
Simulator::characterizeReplay(const CachedTrace &trace)
{
    CharacterizationResult res;
    res.mixProfiler =
        std::make_unique<profile::InstructionMixProfiler>();
    res.coverageProfiler =
        std::make_unique<profile::LoadCoverageProfiler>();
    res.cacheProfiler = std::make_unique<profile::CacheProfiler>();
    res.loadBranchProfiler =
        std::make_unique<profile::LoadBranchProfiler>();

    vm::TraceReplayer replayer(trace.trace, *trace.prog);
    replayer.addSink(res.mixProfiler.get());
    replayer.addSink(res.coverageProfiler.get());
    replayer.addSink(res.cacheProfiler.get());
    replayer.addSink(res.loadBranchProfiler.get());
    util::StatusOr<uint64_t> delivered = replayer.replay();
    if (delivered.ok()) {
        res.instructions = delivered.value();
        res.verified = trace.verified;
    } else {
        res.status = delivered.status();
    }
    res.mix = res.mixProfiler->summary();
    res.coverage = res.coverageProfiler->summary();
    res.cache = res.cacheProfiler->summary();
    res.loadBranch = res.loadBranchProfiler->summary();
    return res;
}

TimingResult
Simulator::timeReplay(const CachedTrace &trace,
                      const cpu::PlatformConfig &platform)
{
    TimingResult res;
    mem::CacheHierarchy caches = platform.makeHierarchy();
    auto predictor = platform.makePredictor();

    vm::TraceReplayer replayer(trace.trace, *trace.prog);
    if (platform.core.outOfOrder) {
        cpu::OooCore core(platform.core, &caches, predictor.get());
        replayer.addSink(&core);
        res.status = replayer.replay().status();
        res.cycles = core.cycles();
        res.instructions = core.instructions();
        res.mispredicts = core.branchMispredictions();
        res.ipc = core.ipc();
        res.seconds = core.seconds();
    } else {
        cpu::InorderCore core(platform.core, &caches, predictor.get());
        replayer.addSink(&core);
        res.status = replayer.replay().status();
        res.cycles = core.cycles();
        res.instructions = core.instructions();
        res.mispredicts = core.branchMispredictions();
        res.ipc = core.ipc();
        res.seconds = core.seconds();
    }
    res.verified = res.status.ok() && trace.verified;
    return res;
}

SampledTimingResult
Simulator::sampleTiming(const CachedTrace &trace,
                        const cpu::PlatformConfig &platform,
                        const SamplingOptions &opts)
{
    return core::sampleTiming(trace, platform, opts);
}

std::vector<TimingResult>
Simulator::timeReplayMany(
    const CachedTrace &trace,
    const std::vector<const cpu::PlatformConfig *> &platforms)
{
    // Per-platform sink state; heap-held because the cores keep
    // pointers to their hierarchy/predictor across the replay.
    struct PlatformSinks
    {
        std::unique_ptr<mem::CacheHierarchy> caches;
        std::unique_ptr<branch::BranchPredictor> predictor;
        std::unique_ptr<cpu::OooCore> ooo;
        std::unique_ptr<cpu::InorderCore> inorder;
    };
    std::vector<PlatformSinks> sinks(platforms.size());

    vm::TraceReplayer replayer(trace.trace, *trace.prog);
    for (size_t i = 0; i < platforms.size(); i++) {
        const cpu::PlatformConfig &p = *platforms[i];
        PlatformSinks &s = sinks[i];
        s.caches = std::make_unique<mem::CacheHierarchy>(
            p.makeHierarchy());
        s.predictor = p.makePredictor();
        if (p.core.outOfOrder) {
            s.ooo = std::make_unique<cpu::OooCore>(
                p.core, s.caches.get(), s.predictor.get());
            replayer.addSink(s.ooo.get());
        } else {
            s.inorder = std::make_unique<cpu::InorderCore>(
                p.core, s.caches.get(), s.predictor.get());
            replayer.addSink(s.inorder.get());
        }
    }
    const util::Status replay_status = replayer.replay().status();

    std::vector<TimingResult> results(platforms.size());
    for (size_t i = 0; i < platforms.size(); i++) {
        TimingResult &res = results[i];
        if (sinks[i].ooo) {
            const cpu::OooCore &core = *sinks[i].ooo;
            res.cycles = core.cycles();
            res.instructions = core.instructions();
            res.mispredicts = core.branchMispredictions();
            res.ipc = core.ipc();
            res.seconds = core.seconds();
        } else {
            const cpu::InorderCore &core = *sinks[i].inorder;
            res.cycles = core.cycles();
            res.instructions = core.instructions();
            res.mispredicts = core.branchMispredictions();
            res.ipc = core.ipc();
            res.seconds = core.seconds();
        }
        res.status = replay_status;
        res.verified = replay_status.ok() && trace.verified;
    }
    return results;
}

namespace {

double
wallNow()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

TraceKey
makeKey(const SweepJob &job)
{
    TraceKey key;
    key.app = job.app;
    key.variant = job.variant;
    key.scale = job.scale;
    key.seed = job.seed;
    key.registerPressure = job.registerPressure;
    if (job.registerPressure) {
        key.intRegs = job.platform.core.numIntRegs;
        key.fpRegs = job.platform.core.numFpRegs;
    }
    return key;
}

TraceKey
makeKey(const CharacterizeJob &job)
{
    TraceKey key;
    key.app = job.app;
    key.variant = job.variant;
    key.scale = job.scale;
    key.seed = job.seed;
    return key;
}

TimingResult
runSweepJob(const SweepJob &job)
{
    apps::AppRun run = job.app->make(job.variant, job.scale, job.seed);
    if (job.registerPressure)
        Simulator::applyRegisterPressure(run, job.platform);
    return Simulator::time(run, job.platform);
}

TimingResult
replaySweepJob(const CachedTrace &trace, const SweepJob &job)
{
    return Simulator::timeReplay(trace, job.platform);
}

std::vector<TimingResult>
replaySweepGroup(const CachedTrace &trace,
                 const std::vector<const SweepJob *> &group)
{
    std::vector<const cpu::PlatformConfig *> platforms;
    platforms.reserve(group.size());
    for (const SweepJob *job : group)
        platforms.push_back(&job->platform);
    return Simulator::timeReplayMany(trace, platforms);
}

CharacterizationResult
runCharacterizeJob(const CharacterizeJob &job)
{
    apps::AppRun run = job.app->make(job.variant, job.scale, job.seed);
    return Simulator::characterize(run);
}

CharacterizationResult
replayCharacterizeJob(const CachedTrace &trace, const CharacterizeJob &)
{
    return Simulator::characterizeReplay(trace);
}

/**
 * Fan @a jobs out over a pool and collect results in job order,
 * substituting trace replay for interpretation per the options'
 * trace policy. The app registry is touched once up front so the
 * workers never race on its lazy initialization.
 *
 * Trace scheduling: workload keys are counted over the whole job
 * list first. A job replays when the policy is Always, when its key
 * is shared by ≥2 jobs of this call, or when a supplied persistent
 * cache already holds the key; the first job to reach a key records
 * it (single-flight — concurrent jobs for the same workload block on
 * the one recording). With the ephemeral per-call cache, a remaining
 * -use counter drops each trace after its last consumer, so peak
 * memory tracks in-flight workloads rather than the job list.
 *
 * When the sweep runs on the calling thread and @a group_fn is
 * supplied, all replay jobs sharing a trace are handed to it in one
 * call, so the encoded stream is decoded once for the whole group
 * (every consumer's sink rides the same replayer). Worker-pool
 * sweeps keep per-job replay, which scales across threads; results
 * are bit-identical either way.
 */
template <typename Job, typename Result, typename LiveFn,
          typename ReplayFn>
std::vector<Result>
runAll(const std::vector<Job> &jobs, const SweepOptions &opts,
       LiveFn live_fn, ReplayFn replay_fn,
       std::vector<Result> (*group_fn)(
           const CachedTrace &,
           const std::vector<const Job *> &) = nullptr)
{
    std::vector<Result> results(jobs.size());
    unsigned threads = opts.threads;
    if (threads == 0)
        threads = util::ThreadPool::defaultThreads();

    // Decide per job whether it goes through the trace path.
    std::vector<std::string> key_str(jobs.size());
    std::vector<bool> replay(jobs.size(), false);
    std::unordered_map<std::string, int> uses;
    if (opts.trace != SweepOptions::Trace::Off) {
        for (size_t i = 0; i < jobs.size(); i++) {
            key_str[i] = makeKey(jobs[i]).str();
            uses[key_str[i]]++;
        }
        for (size_t i = 0; i < jobs.size(); i++) {
            replay[i] =
                opts.trace == SweepOptions::Trace::Always ||
                uses[key_str[i]] >= 2 ||
                (opts.cache &&
                 opts.cache->lookup(makeKey(jobs[i])) != nullptr);
        }
    }

    TraceCache ephemeral;
    TraceCache *cache = opts.cache ? opts.cache : &ephemeral;
    const bool evict = opts.cache == nullptr;
    // Fully populated before the workers start; workers only look up
    // existing entries and atomically decrement, so the map structure
    // itself is never mutated concurrently.
    std::unordered_map<std::string, std::atomic<int>> remaining;
    for (size_t i = 0; i < jobs.size(); i++) {
        if (replay[i])
            remaining[key_str[i]]++;
    }

    // Degradation ladder, in preference order: replay the cached
    // trace; if recording failed (after its retry), interpret live;
    // if a replay decoded corrupt data, quarantine the entry,
    // re-record and retry once, then interpret live. A job only
    // carries a failed Status when every rung failed — and even then
    // its slot is a well-formed Result, so the sweep always returns
    // jobs.size() entries.
    auto run_one_impl = [&](size_t i) -> Result {
        if (BIOPERF_FAILPOINT("pool.task.throw"))
            throw util::StatusError(util::Status::internal(
                "fail point pool.task.throw fired"));
        if (!replay[i])
            return live_fn(jobs[i]);
        const TraceKey key = makeKey(jobs[i]);
        auto decrement = [&] {
            if (evict)
                remaining.find(key_str[i])->second.fetch_sub(1);
        };
        util::StatusOr<TraceCache::Ptr> got = cache->obtain(key);
        if (!got.ok()) {
            cache->noteLiveFallback(key, got.status());
            decrement();
            return live_fn(jobs[i]);
        }
        TraceCache::Ptr trace = got.value();
        const double t0 = wallNow();
        Result r = replay_fn(*trace, jobs[i]);
        if (!r.status.ok()) {
            cache->quarantine(key, r.status);
            trace.reset();
            got = cache->obtain(key);
            if (got.ok()) {
                trace = got.value();
                r = replay_fn(*trace, jobs[i]);
            }
            if (!got.ok() || !r.status.ok()) {
                cache->noteLiveFallback(
                    key, got.ok() ? r.status : got.status());
                decrement();
                return live_fn(jobs[i]);
            }
        }
        cache->noteReplay(wallNow() - t0, trace->instructions);
        if (evict &&
            remaining.find(key_str[i])->second.fetch_sub(1) == 1) {
            trace.reset();
            cache->erase(key);
        }
        return r;
    };
    auto run_one = [&](size_t i) -> Result {
        try {
            return run_one_impl(i);
        } catch (const util::StatusError &e) {
            Result r{};
            r.status = e.status();
            return r;
        } catch (const std::exception &e) {
            Result r{};
            r.status = util::Status::internal(
                std::string("sweep worker: ") + e.what());
            return r;
        }
    };

    if (threads <= 1 || jobs.size() <= 1) {
        std::unordered_map<std::string, std::vector<size_t>> groups;
        if (group_fn) {
            for (size_t i = 0; i < jobs.size(); i++) {
                if (replay[i])
                    groups[key_str[i]].push_back(i);
            }
        }
        std::vector<bool> done(jobs.size(), false);
        for (size_t i = 0; i < jobs.size(); i++) {
            if (done[i])
                continue;
            auto it = (group_fn && replay[i]) ? groups.find(key_str[i])
                                              : groups.end();
            if (it == groups.end() || it->second.size() < 2) {
                results[i] = run_one(i);
                continue;
            }
            // Shared-trace group: decode once, drive every member's
            // sinks from the same replayer. obtain() still runs per
            // member so record/hit accounting matches the per-job
            // path exactly.
            const std::vector<size_t> &members = it->second;
            const TraceKey key = makeKey(jobs[i]);
            TraceCache::Ptr trace;
            util::Status obtain_err;
            for (size_t m = 0; m < members.size() && obtain_err.ok();
                 m++) {
                util::StatusOr<TraceCache::Ptr> got =
                    cache->obtain(key);
                if (got.ok())
                    trace = got.value();
                else
                    obtain_err = got.status();
            }
            if (!obtain_err.ok() || !trace) {
                // The shared recording failed: degrade to per-member
                // jobs, each walking the full fallback ladder (which
                // does its own incident accounting).
                for (size_t idx : members) {
                    results[idx] = run_one(idx);
                    done[idx] = true;
                }
                continue;
            }
            std::vector<const Job *> group_jobs;
            group_jobs.reserve(members.size());
            for (size_t idx : members)
                group_jobs.push_back(&jobs[idx]);
            const double t0 = wallNow();
            std::vector<Result> rs = group_fn(*trace, group_jobs);
            util::Status group_err;
            for (const Result &r : rs)
                if (!r.status.ok()) {
                    group_err = r.status;
                    break;
                }
            if (!group_err.ok()) {
                // The one shared decode hit corrupt data; every
                // member saw it. Quarantine so re-obtains re-record,
                // then retry per member.
                cache->quarantine(key, group_err);
                trace.reset();
                for (size_t idx : members) {
                    results[idx] = run_one(idx);
                    done[idx] = true;
                }
                continue;
            }
            // One wall-clock pass delivered the full stream to every
            // member, so the effective replayed-instruction count is
            // per consumer.
            cache->noteReplay(
                wallNow() - t0,
                trace->instructions *
                    static_cast<uint64_t>(members.size()));
            for (size_t m = 0; m < members.size(); m++) {
                results[members[m]] = std::move(rs[m]);
                done[members[m]] = true;
            }
            if (evict) {
                remaining.find(key_str[i])
                    ->second.fetch_sub(
                        static_cast<int>(members.size()));
                trace.reset();
                cache->erase(key);
            }
        }
    } else {
        apps::bioperfApps();
        util::ThreadPool pool(threads);
        std::vector<std::future<Result>> futures;
        futures.reserve(jobs.size());
        for (size_t i = 0; i < jobs.size(); i++)
            futures.push_back(
                pool.submit([&run_one, i] { return run_one(i); }));
        for (size_t i = 0; i < jobs.size(); i++)
            results[i] = futures[i].get();
    }
    if (opts.statsOut)
        *opts.statsOut = cache->stats();
    return results;
}

} // namespace

std::vector<TimingResult>
Simulator::sweep(const std::vector<SweepJob> &jobs, unsigned threads)
{
    SweepOptions opts;
    opts.threads = threads;
    return sweep(jobs, opts);
}

std::vector<TimingResult>
Simulator::sweep(const std::vector<SweepJob> &jobs,
                 const SweepOptions &opts)
{
    return runAll<SweepJob, TimingResult>(jobs, opts, runSweepJob,
                                          replaySweepJob,
                                          replaySweepGroup);
}

std::vector<CharacterizationResult>
Simulator::characterizeSweep(const std::vector<CharacterizeJob> &jobs,
                             unsigned threads)
{
    SweepOptions opts;
    opts.threads = threads;
    return characterizeSweep(jobs, opts);
}

std::vector<CharacterizationResult>
Simulator::characterizeSweep(const std::vector<CharacterizeJob> &jobs,
                             const SweepOptions &opts)
{
    return runAll<CharacterizeJob, CharacterizationResult>(
        jobs, opts, runCharacterizeJob, replayCharacterizeJob);
}

SpeedupResult
Simulator::speedup(const apps::AppInfo &app,
                   const cpu::PlatformConfig &platform,
                   apps::Scale scale, uint64_t seed, unsigned threads,
                   TraceCache *cache)
{
    std::vector<SweepJob> jobs(2);
    jobs[0].app = &app;
    jobs[0].platform = platform;
    jobs[0].variant = apps::Variant::Baseline;
    jobs[0].scale = scale;
    jobs[0].seed = seed;
    jobs[1] = jobs[0];
    jobs[1].variant = apps::Variant::Transformed;
    SweepOptions opts;
    opts.threads = threads;
    opts.cache = cache;
    // With a persistent cache, record both variants so later calls
    // (other platforms, other predictors) replay instead of
    // re-interpreting and re-rewriting the same workload pair.
    if (cache)
        opts.trace = SweepOptions::Trace::Always;
    std::vector<TimingResult> timed = sweep(jobs, opts);

    SpeedupResult res;
    res.baseline = timed[0];
    res.transformed = timed[1];
    res.speedup = res.transformed.cycles == 0
                      ? 0.0
                      : static_cast<double>(res.baseline.cycles) /
                            static_cast<double>(res.transformed.cycles);
    return res;
}

} // namespace bioperf::core
