#include "core/simulator.h"

#include <future>

#include "cpu/inorder_core.h"
#include "cpu/ooo_core.h"
#include "regalloc/linear_scan.h"
#include "util/thread_pool.h"
#include "vm/interpreter.h"

namespace bioperf::core {

CharacterizationResult
Simulator::characterize(apps::AppRun &run)
{
    CharacterizationResult res;
    res.mix = std::make_unique<profile::InstructionMixProfiler>();
    res.coverage = std::make_unique<profile::LoadCoverageProfiler>();
    res.cache = std::make_unique<profile::CacheProfiler>();
    res.loadBranch = std::make_unique<profile::LoadBranchProfiler>();

    vm::Interpreter interp(*run.prog);
    interp.addSink(res.mix.get());
    interp.addSink(res.coverage.get());
    interp.addSink(res.cache.get());
    interp.addSink(res.loadBranch.get());
    run.driver(interp);
    res.instructions = interp.totalInstrs();
    res.verified = run.verify();
    return res;
}

TimingResult
Simulator::time(apps::AppRun &run, const cpu::PlatformConfig &platform)
{
    TimingResult res;
    mem::CacheHierarchy caches = platform.makeHierarchy();
    auto predictor = platform.makePredictor();

    vm::Interpreter interp(*run.prog);
    if (platform.core.outOfOrder) {
        cpu::OooCore core(platform.core, &caches, predictor.get());
        interp.addSink(&core);
        run.driver(interp);
        res.cycles = core.cycles();
        res.instructions = core.instructions();
        res.mispredicts = core.branchMispredictions();
        res.ipc = core.ipc();
        res.seconds = core.seconds();
    } else {
        cpu::InorderCore core(platform.core, &caches, predictor.get());
        interp.addSink(&core);
        run.driver(interp);
        res.cycles = core.cycles();
        res.instructions = core.instructions();
        res.mispredicts = core.branchMispredictions();
        res.ipc = core.ipc();
        res.seconds = core.seconds();
    }
    res.verified = run.verify();
    return res;
}

uint32_t
Simulator::applyRegisterPressure(apps::AppRun &run,
                                 const cpu::PlatformConfig &platform)
{
    uint32_t spills = 0;
    for (size_t f = 0; f < run.prog->numFunctions(); f++) {
        const regalloc::AllocResult r = regalloc::allocate(
            *run.prog, run.prog->function(f),
            platform.core.numIntRegs, platform.core.numFpRegs);
        spills += r.spillInstrs;
    }
    run.prog->renumber();
    return spills;
}

namespace {

TimingResult
runSweepJob(const SweepJob &job)
{
    apps::AppRun run = job.app->make(job.variant, job.scale, job.seed);
    if (job.registerPressure)
        Simulator::applyRegisterPressure(run, job.platform);
    return Simulator::time(run, job.platform);
}

CharacterizationResult
runCharacterizeJob(const CharacterizeJob &job)
{
    apps::AppRun run = job.app->make(job.variant, job.scale, job.seed);
    return Simulator::characterize(run);
}

/**
 * Fan @a jobs out over a pool and collect results in job order; the
 * app registry is touched once up front so the workers never race on
 * its lazy initialization.
 */
template <typename Job, typename Result, typename RunFn>
std::vector<Result>
runAll(const std::vector<Job> &jobs, unsigned threads, RunFn run_fn)
{
    std::vector<Result> results(jobs.size());
    if (threads == 0)
        threads = util::ThreadPool::defaultThreads();
    if (threads <= 1 || jobs.size() <= 1) {
        for (size_t i = 0; i < jobs.size(); i++)
            results[i] = run_fn(jobs[i]);
        return results;
    }
    apps::bioperfApps();
    util::ThreadPool pool(threads);
    std::vector<std::future<Result>> futures;
    futures.reserve(jobs.size());
    for (const Job &job : jobs)
        futures.push_back(pool.submit([&job, &run_fn] {
            return run_fn(job);
        }));
    for (size_t i = 0; i < jobs.size(); i++)
        results[i] = futures[i].get();
    return results;
}

} // namespace

std::vector<TimingResult>
Simulator::sweep(const std::vector<SweepJob> &jobs, unsigned threads)
{
    return runAll<SweepJob, TimingResult>(jobs, threads, runSweepJob);
}

std::vector<CharacterizationResult>
Simulator::characterizeSweep(const std::vector<CharacterizeJob> &jobs,
                             unsigned threads)
{
    return runAll<CharacterizeJob, CharacterizationResult>(
        jobs, threads, runCharacterizeJob);
}

double
Simulator::speedup(const apps::AppInfo &app,
                   const cpu::PlatformConfig &platform,
                   apps::Scale scale, uint64_t seed,
                   TimingResult *baseline_out,
                   TimingResult *transformed_out)
{
    apps::AppRun base = app.make(apps::Variant::Baseline, scale, seed);
    apps::AppRun xform =
        app.make(apps::Variant::Transformed, scale, seed);
    applyRegisterPressure(base, platform);
    applyRegisterPressure(xform, platform);
    const TimingResult tb = time(base, platform);
    const TimingResult tx = time(xform, platform);
    if (baseline_out)
        *baseline_out = tb;
    if (transformed_out)
        *transformed_out = tx;
    return tx.cycles == 0
               ? 0.0
               : static_cast<double>(tb.cycles) /
                     static_cast<double>(tx.cycles);
}

} // namespace bioperf::core
