#include "core/simulator.h"

#include <future>

#include "cpu/inorder_core.h"
#include "cpu/ooo_core.h"
#include "regalloc/linear_scan.h"
#include "util/thread_pool.h"
#include "vm/interpreter.h"

namespace bioperf::core {

CharacterizationResult
Simulator::characterize(apps::AppRun &run)
{
    CharacterizationResult res;
    res.mixProfiler =
        std::make_unique<profile::InstructionMixProfiler>();
    res.coverageProfiler =
        std::make_unique<profile::LoadCoverageProfiler>();
    res.cacheProfiler = std::make_unique<profile::CacheProfiler>();
    res.loadBranchProfiler =
        std::make_unique<profile::LoadBranchProfiler>();

    vm::Interpreter interp(*run.prog);
    interp.addSink(res.mixProfiler.get());
    interp.addSink(res.coverageProfiler.get());
    interp.addSink(res.cacheProfiler.get());
    interp.addSink(res.loadBranchProfiler.get());
    run.driver(interp);
    res.instructions = interp.totalInstrs();
    res.verified = run.verify();
    res.mix = res.mixProfiler->summary();
    res.coverage = res.coverageProfiler->summary();
    res.cache = res.cacheProfiler->summary();
    res.loadBranch = res.loadBranchProfiler->summary();
    return res;
}

util::json::Value
CharacterizationResult::report() const
{
    util::json::Value v = util::json::Value::object();
    v["instructions"] = instructions;
    v["verified"] = verified;
    v["mix"] = mix.report();
    v["coverage"] = coverage.report();
    v["cache"] = cache.report();
    v["load_branch"] = loadBranch.report();
    return v;
}

util::json::Value
TimingResult::report() const
{
    util::json::Value v = util::json::Value::object();
    v["cycles"] = cycles;
    v["instructions"] = instructions;
    v["mispredicts"] = mispredicts;
    v["ipc"] = ipc;
    v["seconds"] = seconds;
    v["verified"] = verified;
    return v;
}

util::json::Value
SpeedupResult::report() const
{
    util::json::Value v = util::json::Value::object();
    v["baseline"] = baseline.report();
    v["transformed"] = transformed.report();
    v["speedup"] = speedup;
    v["verified"] = verified();
    return v;
}

TimingResult
Simulator::time(apps::AppRun &run, const cpu::PlatformConfig &platform)
{
    TimingResult res;
    mem::CacheHierarchy caches = platform.makeHierarchy();
    auto predictor = platform.makePredictor();

    vm::Interpreter interp(*run.prog);
    if (platform.core.outOfOrder) {
        cpu::OooCore core(platform.core, &caches, predictor.get());
        interp.addSink(&core);
        run.driver(interp);
        res.cycles = core.cycles();
        res.instructions = core.instructions();
        res.mispredicts = core.branchMispredictions();
        res.ipc = core.ipc();
        res.seconds = core.seconds();
    } else {
        cpu::InorderCore core(platform.core, &caches, predictor.get());
        interp.addSink(&core);
        run.driver(interp);
        res.cycles = core.cycles();
        res.instructions = core.instructions();
        res.mispredicts = core.branchMispredictions();
        res.ipc = core.ipc();
        res.seconds = core.seconds();
    }
    res.verified = run.verify();
    return res;
}

uint32_t
Simulator::applyRegisterPressure(apps::AppRun &run,
                                 const cpu::PlatformConfig &platform)
{
    uint32_t spills = 0;
    for (size_t f = 0; f < run.prog->numFunctions(); f++) {
        const regalloc::AllocResult r = regalloc::allocate(
            *run.prog, run.prog->function(f),
            platform.core.numIntRegs, platform.core.numFpRegs);
        spills += r.spillInstrs;
    }
    run.prog->renumber();
    return spills;
}

namespace {

TimingResult
runSweepJob(const SweepJob &job)
{
    apps::AppRun run = job.app->make(job.variant, job.scale, job.seed);
    if (job.registerPressure)
        Simulator::applyRegisterPressure(run, job.platform);
    return Simulator::time(run, job.platform);
}

CharacterizationResult
runCharacterizeJob(const CharacterizeJob &job)
{
    apps::AppRun run = job.app->make(job.variant, job.scale, job.seed);
    return Simulator::characterize(run);
}

/**
 * Fan @a jobs out over a pool and collect results in job order; the
 * app registry is touched once up front so the workers never race on
 * its lazy initialization.
 */
template <typename Job, typename Result, typename RunFn>
std::vector<Result>
runAll(const std::vector<Job> &jobs, unsigned threads, RunFn run_fn)
{
    std::vector<Result> results(jobs.size());
    if (threads == 0)
        threads = util::ThreadPool::defaultThreads();
    if (threads <= 1 || jobs.size() <= 1) {
        for (size_t i = 0; i < jobs.size(); i++)
            results[i] = run_fn(jobs[i]);
        return results;
    }
    apps::bioperfApps();
    util::ThreadPool pool(threads);
    std::vector<std::future<Result>> futures;
    futures.reserve(jobs.size());
    for (const Job &job : jobs)
        futures.push_back(pool.submit([&job, &run_fn] {
            return run_fn(job);
        }));
    for (size_t i = 0; i < jobs.size(); i++)
        results[i] = futures[i].get();
    return results;
}

} // namespace

std::vector<TimingResult>
Simulator::sweep(const std::vector<SweepJob> &jobs, unsigned threads)
{
    return runAll<SweepJob, TimingResult>(jobs, threads, runSweepJob);
}

std::vector<CharacterizationResult>
Simulator::characterizeSweep(const std::vector<CharacterizeJob> &jobs,
                             unsigned threads)
{
    return runAll<CharacterizeJob, CharacterizationResult>(
        jobs, threads, runCharacterizeJob);
}

SpeedupResult
Simulator::speedup(const apps::AppInfo &app,
                   const cpu::PlatformConfig &platform,
                   apps::Scale scale, uint64_t seed, unsigned threads)
{
    std::vector<SweepJob> jobs(2);
    jobs[0].app = &app;
    jobs[0].platform = platform;
    jobs[0].variant = apps::Variant::Baseline;
    jobs[0].scale = scale;
    jobs[0].seed = seed;
    jobs[1] = jobs[0];
    jobs[1].variant = apps::Variant::Transformed;
    std::vector<TimingResult> timed = sweep(jobs, threads);

    SpeedupResult res;
    res.baseline = timed[0];
    res.transformed = timed[1];
    res.speedup = res.transformed.cycles == 0
                      ? 0.0
                      : static_cast<double>(res.baseline.cycles) /
                            static_cast<double>(res.transformed.cycles);
    return res;
}

} // namespace bioperf::core
