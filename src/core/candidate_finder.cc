#include "core/candidate_finder.h"

#include <algorithm>

#include "vm/interpreter.h"

namespace bioperf::core {

std::vector<profile::PerLoadProfiler::Entry>
CandidateFinder::profileLoads(apps::AppRun &run, size_t top_n)
{
    profile::PerLoadProfiler profiler(*run.prog);
    vm::Interpreter interp(*run.prog);
    interp.addSink(&profiler);
    run.driver(interp);
    return profiler.topLoads(top_n);
}

std::vector<profile::PerLoadProfiler::Entry>
CandidateFinder::findCandidates(apps::AppRun &run)
{
    auto entries = profileLoads(run, 512);
    std::vector<profile::PerLoadProfiler::Entry> out;
    for (const auto &e : entries) {
        if (e.frequency >= params_.minFrequency &&
            e.nextBranchMissRate() >= params_.minBranchMissRate) {
            out.push_back(e);
        }
    }
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) {
                  return a.frequency * a.nextBranchMissRate() >
                         b.frequency * b.nextBranchMissRate();
              });
    if (out.size() > params_.maxCandidates)
        out.resize(params_.maxCandidates);
    return out;
}

} // namespace bioperf::core
