#ifndef BIOPERF_CORE_TRANSFORM_PIPELINE_H_
#define BIOPERF_CORE_TRANSFORM_PIPELINE_H_

#include <string>
#include <vector>

#include "apps/app.h"
#include "cpu/platforms.h"

namespace bioperf::core {

/**
 * End-to-end application of the paper's methodology to one
 * application: build baseline and transformed kernels, check both
 * against the golden model (which also proves them equivalent to
 * each other), and summarize the static footprint of the
 * transformation (the Table 6 view).
 */
class TransformPipeline
{
  public:
    struct Report
    {
        std::string app;
        /** Static loads in the transformed kernel's hot region. */
        uint32_t staticLoadsConsidered = 0;
        /** Distinct tagged source lines the transformation touched. */
        uint32_t linesInvolved = 0;
        /** Static instruction counts, before/after. */
        size_t baselineStaticInstrs = 0;
        size_t transformedStaticInstrs = 0;
        size_t baselineStaticLoads = 0;
        size_t transformedStaticLoads = 0;
        /** Conditional-branch static counts (cmov conversion effect). */
        size_t baselineStaticBranches = 0;
        size_t transformedStaticBranches = 0;
        bool baselineVerified = false;
        bool transformedVerified = false;
    };

    /**
     * Builds both variants at @a scale/@a seed, runs them functionally
     * and reports the transformation footprint.
     */
    static Report analyze(const apps::AppInfo &app, apps::Scale scale,
                          uint64_t seed);

    /** Reports for all six transformable applications. */
    static std::vector<Report> analyzeAll(apps::Scale scale,
                                          uint64_t seed);
};

} // namespace bioperf::core

#endif // BIOPERF_CORE_TRANSFORM_PIPELINE_H_
