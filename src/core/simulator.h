#ifndef BIOPERF_CORE_SIMULATOR_H_
#define BIOPERF_CORE_SIMULATOR_H_

#include <memory>
#include <vector>

#include "apps/app.h"
#include "core/sampling.h"
#include "core/trace_cache.h"
#include "cpu/platforms.h"
#include "profile/cache_profiler.h"
#include "profile/instruction_mix.h"
#include "profile/load_branch.h"
#include "profile/load_coverage.h"
#include "util/metrics.h"

namespace bioperf::core {

/**
 * Results of one full characterization pass (the repository's
 * ATOM-equivalent): instruction mix, static-load coverage, cache
 * behaviour and load/branch sequence analysis, all collected in a
 * single interpretation of the workload.
 *
 * Common reads go through the value-type summaries (filled by
 * characterize() from the profilers at run end); the profiler objects
 * stay attached for deep dives — per-sid counts, full CDFs, the
 * embedded predictor — without consumers rebuilding the run.
 */
struct CharacterizationResult
{
    profile::MixSummary mix;
    profile::CoverageSummary coverage;
    profile::CacheSummary cache;
    profile::LoadBranchSummary loadBranch;
    uint64_t instructions = 0;
    bool verified = false;
    /**
     * OK for a complete characterization. A sweep entry that failed
     * (fail point, corrupt replay with no live fallback possible,
     * worker exception) carries the failure here with its counters
     * zero or partial; report() never includes it — failures are
     * surfaced through the run manifest instead.
     */
    util::Status status;

    /** Deep-dive access to the full profilers (null on failure). */
    std::unique_ptr<profile::InstructionMixProfiler> mixProfiler;
    std::unique_ptr<profile::LoadCoverageProfiler> coverageProfiler;
    std::unique_ptr<profile::CacheProfiler> cacheProfiler;
    std::unique_ptr<profile::LoadBranchProfiler> loadBranchProfiler;

    /** Full metric tree: summaries plus instruction count/verify. */
    util::json::Value report() const;
};

/** Results of one timing simulation on a platform. */
struct TimingResult
{
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t mispredicts = 0;
    double ipc = 0.0;
    double seconds = 0.0;
    bool verified = false;
    /** OK for a complete run (see CharacterizationResult::status). */
    util::Status status;

    util::json::Value report() const;
};

/** Result of one baseline-vs-transformed speedup comparison. */
struct SpeedupResult
{
    TimingResult baseline;
    TimingResult transformed;
    /** baseline.cycles / transformed.cycles; 0 when undefined. */
    double speedup = 0.0;

    bool verified() const
    {
        return baseline.verified && transformed.verified;
    }

    util::json::Value report() const;
};

/**
 * One independent timing job of a sweep: build the application at
 * (variant, scale, seed), optionally rewrite it for the platform's
 * architectural register counts, and time it on the platform.
 */
struct SweepJob
{
    const apps::AppInfo *app = nullptr;
    cpu::PlatformConfig platform;
    apps::Variant variant = apps::Variant::Baseline;
    apps::Scale scale = apps::Scale::Small;
    uint64_t seed = 42;
    /** Apply the register-pressure rewrite before timing. */
    bool registerPressure = true;
};

/** One independent characterization job of a sweep. */
struct CharacterizeJob
{
    const apps::AppInfo *app = nullptr;
    apps::Variant variant = apps::Variant::Baseline;
    apps::Scale scale = apps::Scale::Medium;
    uint64_t seed = 42;
};

/**
 * How a sweep schedules its jobs and whether it may substitute
 * record-once/replay-many trace execution for repeated
 * interpretation. Replay is bit-identical to live interpretation (the
 * trace stream drives the same sinks through the same onBatch()
 * path), so the policy only changes wall time and memory, never
 * results.
 */
struct SweepOptions
{
    /** As in sweep(): 0 = pool default, 1 = calling thread. */
    unsigned threads = 0;

    enum class Trace : uint8_t {
        /**
         * Record a workload iff ≥2 jobs of this call share it (or a
         * supplied cache already holds it); unique workloads run
         * live. The default: replay pays only when a recording is
         * consumed more than once.
         */
        Auto,
        /** Record every workload (persistent caches, warm reuse). */
        Always,
        /** Pure interpretation; the pre-trace-cache behaviour. */
        Off,
    };
    Trace trace = Trace::Auto;

    /**
     * Persistent cache to record into / replay from. When null, the
     * sweep uses an ephemeral per-call cache whose entries are
     * dropped as soon as their last job completes (peak memory is
     * bounded by in-flight workloads, not by the whole job list).
     */
    TraceCache *cache = nullptr;

    /**
     * When non-null, receives the call's record/replay cost (useful
     * with the ephemeral cache, whose own stats die with the call).
     */
    TraceCache::Stats *statsOut = nullptr;
};

/**
 * One-stop driver tying applications to the analysis stack. All
 * methods run the application's full workload through the interpreter
 * with the requested sinks attached and check the outputs against the
 * application's golden model.
 */
class Simulator
{
  public:
    /** Characterizes @a run under the Table 3 reference cache model. */
    static CharacterizationResult characterize(apps::AppRun &run);

    /**
     * Characterization from a recorded trace instead of live
     * interpretation: drives the same four profilers with the decoded
     * DynInstr stream. Results are bit-identical to characterize() on
     * the workload the trace was recorded from; the verified flag is
     * the one captured at record time.
     */
    static CharacterizationResult characterizeReplay(
        const CachedTrace &trace);

    /** Times @a run on @a platform (OoO or in-order per config). */
    static TimingResult time(apps::AppRun &run,
                             const cpu::PlatformConfig &platform);

    /**
     * Timing from a recorded trace: replays the stream into the
     * platform's core model (caches + predictor built fresh), bit
     * identical to time() on the recorded workload. The trace must
     * have been recorded with the platform's register file when
     * register pressure matters (TraceKey::registerPressure).
     */
    static TimingResult timeReplay(const CachedTrace &trace,
                                   const cpu::PlatformConfig &platform);

    /**
     * Times one recorded trace on several platforms in a single
     * decode pass: every platform's core model is attached to one
     * TraceReplayer, so the encoded stream is decoded once however
     * many consumers it has. Results (in @a platforms order) are
     * bit-identical to calling timeReplay() per platform — the cores
     * are independent sinks and each sees the exact same stream.
     * Sequential sweeps use this to cut the per-job decode cost;
     * parallel sweeps prefer per-job replayers, which scale across
     * workers.
     */
    static std::vector<TimingResult> timeReplayMany(
        const CachedTrace &trace,
        const std::vector<const cpu::PlatformConfig *> &platforms);

    /**
     * Sampled (approximate) timing from a recorded trace: alternates
     * functional warming with detailed measurement intervals and
     * reports mean CPI with a 95% confidence interval and projected
     * full-run cycles, at a fraction of timeReplay()'s cost. With
     * opts.threads != 1, keyframe-aligned shards of the single trace
     * replay concurrently; results are bit-identical for any thread
     * count at a fixed opts.seed. See core/sampling.h.
     */
    static SampledTimingResult sampleTiming(
        const CachedTrace &trace, const cpu::PlatformConfig &platform,
        const SamplingOptions &opts = {});

    /**
     * Rewrites every function of the application for the platform's
     * architectural register counts, inserting spill code. Call
     * before time() when modeling register pressure (Pentium 4).
     *
     * @return total spill instructions inserted
     */
    static uint32_t applyRegisterPressure(
        apps::AppRun &run, const cpu::PlatformConfig &platform);

    /** As above, with explicit register counts (trace recording). */
    static uint32_t applyRegisterPressure(apps::AppRun &run,
                                          uint32_t int_regs,
                                          uint32_t fp_regs);

    /**
     * Convenience: baseline-vs-transformed speedup of @a app on
     * @a platform, as the paper reports it (original time divided by
     * transformed time), with register pressure applied to both.
     * Implemented as a two-job sweep(); @a threads as there (1 = the
     * calling thread, the default; 0 = the default pool width).
     * Results are bit-identical for any thread count.
     *
     * @param cache when non-null, baseline and transformed workloads
     *        are recorded into it (once per register-file shape) and
     *        replayed on later calls — platform sweeps over the same
     *        app interpret each variant once instead of per platform.
     */
    static SpeedupResult speedup(const apps::AppInfo &app,
                                 const cpu::PlatformConfig &platform,
                                 apps::Scale scale, uint64_t seed,
                                 unsigned threads = 1,
                                 TraceCache *cache = nullptr);

    /**
     * Runs independent timing jobs concurrently on a util::ThreadPool
     * and returns results in job order. Each job owns its entire
     * simulation stack (program or shared immutable trace, caches,
     * predictor, core), so results are bit-identical for any thread
     * count and any SweepOptions::Trace policy.
     *
     * Under the default trace policy (SweepOptions::Trace::Auto),
     * jobs sharing a workload — same (app, variant, scale, seed) and,
     * with registerPressure, the same architectural register file —
     * interpret and rewrite it once and replay the recorded trace
     * thereafter, including concurrently from one shared immutable
     * trace across pool workers.
     *
     * @param threads 0 = ThreadPool::defaultThreads() (honours the
     *        BIOPERF_THREADS environment variable); 1 = run inline on
     *        the calling thread.
     */
    static std::vector<TimingResult> sweep(
        const std::vector<SweepJob> &jobs, unsigned threads = 0);
    static std::vector<TimingResult> sweep(
        const std::vector<SweepJob> &jobs, const SweepOptions &opts);

    /** Parallel counterpart of characterize() over many jobs. */
    static std::vector<CharacterizationResult> characterizeSweep(
        const std::vector<CharacterizeJob> &jobs, unsigned threads = 0);
    static std::vector<CharacterizationResult> characterizeSweep(
        const std::vector<CharacterizeJob> &jobs,
        const SweepOptions &opts);
};

} // namespace bioperf::core

#endif // BIOPERF_CORE_SIMULATOR_H_
