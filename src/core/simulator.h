#ifndef BIOPERF_CORE_SIMULATOR_H_
#define BIOPERF_CORE_SIMULATOR_H_

#include <memory>
#include <vector>

#include "apps/app.h"
#include "cpu/platforms.h"
#include "profile/cache_profiler.h"
#include "profile/instruction_mix.h"
#include "profile/load_branch.h"
#include "profile/load_coverage.h"
#include "util/metrics.h"

namespace bioperf::core {

/**
 * Results of one full characterization pass (the repository's
 * ATOM-equivalent): instruction mix, static-load coverage, cache
 * behaviour and load/branch sequence analysis, all collected in a
 * single interpretation of the workload.
 *
 * Common reads go through the value-type summaries (filled by
 * characterize() from the profilers at run end); the profiler objects
 * stay attached for deep dives — per-sid counts, full CDFs, the
 * embedded predictor — without consumers rebuilding the run.
 */
struct CharacterizationResult
{
    profile::MixSummary mix;
    profile::CoverageSummary coverage;
    profile::CacheSummary cache;
    profile::LoadBranchSummary loadBranch;
    uint64_t instructions = 0;
    bool verified = false;

    /** Deep-dive access to the full profilers (always non-null). */
    std::unique_ptr<profile::InstructionMixProfiler> mixProfiler;
    std::unique_ptr<profile::LoadCoverageProfiler> coverageProfiler;
    std::unique_ptr<profile::CacheProfiler> cacheProfiler;
    std::unique_ptr<profile::LoadBranchProfiler> loadBranchProfiler;

    /** Full metric tree: summaries plus instruction count/verify. */
    util::json::Value report() const;
};

/** Results of one timing simulation on a platform. */
struct TimingResult
{
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t mispredicts = 0;
    double ipc = 0.0;
    double seconds = 0.0;
    bool verified = false;

    util::json::Value report() const;
};

/** Result of one baseline-vs-transformed speedup comparison. */
struct SpeedupResult
{
    TimingResult baseline;
    TimingResult transformed;
    /** baseline.cycles / transformed.cycles; 0 when undefined. */
    double speedup = 0.0;

    bool verified() const
    {
        return baseline.verified && transformed.verified;
    }

    util::json::Value report() const;
};

/**
 * One independent timing job of a sweep: build the application at
 * (variant, scale, seed), optionally rewrite it for the platform's
 * architectural register counts, and time it on the platform.
 */
struct SweepJob
{
    const apps::AppInfo *app = nullptr;
    cpu::PlatformConfig platform;
    apps::Variant variant = apps::Variant::Baseline;
    apps::Scale scale = apps::Scale::Small;
    uint64_t seed = 42;
    /** Apply the register-pressure rewrite before timing. */
    bool registerPressure = true;
};

/** One independent characterization job of a sweep. */
struct CharacterizeJob
{
    const apps::AppInfo *app = nullptr;
    apps::Variant variant = apps::Variant::Baseline;
    apps::Scale scale = apps::Scale::Medium;
    uint64_t seed = 42;
};

/**
 * One-stop driver tying applications to the analysis stack. All
 * methods run the application's full workload through the interpreter
 * with the requested sinks attached and check the outputs against the
 * application's golden model.
 */
class Simulator
{
  public:
    /** Characterizes @a run under the Table 3 reference cache model. */
    static CharacterizationResult characterize(apps::AppRun &run);

    /** Times @a run on @a platform (OoO or in-order per config). */
    static TimingResult time(apps::AppRun &run,
                             const cpu::PlatformConfig &platform);

    /**
     * Rewrites every function of the application for the platform's
     * architectural register counts, inserting spill code. Call
     * before time() when modeling register pressure (Pentium 4).
     *
     * @return total spill instructions inserted
     */
    static uint32_t applyRegisterPressure(
        apps::AppRun &run, const cpu::PlatformConfig &platform);

    /**
     * Convenience: baseline-vs-transformed speedup of @a app on
     * @a platform, as the paper reports it (original time divided by
     * transformed time), with register pressure applied to both.
     * Implemented as a two-job sweep(); @a threads as there (1 = the
     * calling thread, the default; 0 = the default pool width).
     * Results are bit-identical for any thread count.
     */
    static SpeedupResult speedup(const apps::AppInfo &app,
                                 const cpu::PlatformConfig &platform,
                                 apps::Scale scale, uint64_t seed,
                                 unsigned threads = 1);

    /**
     * Runs independent timing jobs concurrently on a util::ThreadPool
     * and returns results in job order. Each job builds and owns its
     * entire simulation stack (program, interpreter, caches,
     * predictor), so results are bit-identical for any thread count.
     *
     * @param threads 0 = ThreadPool::defaultThreads() (honours the
     *        BIOPERF_THREADS environment variable); 1 = run inline on
     *        the calling thread.
     */
    static std::vector<TimingResult> sweep(
        const std::vector<SweepJob> &jobs, unsigned threads = 0);

    /** Parallel counterpart of characterize() over many jobs. */
    static std::vector<CharacterizationResult> characterizeSweep(
        const std::vector<CharacterizeJob> &jobs, unsigned threads = 0);
};

} // namespace bioperf::core

#endif // BIOPERF_CORE_SIMULATOR_H_
