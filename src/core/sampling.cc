#include "core/sampling.h"

#include <algorithm>
#include <functional>
#include <future>

#include "cpu/inorder_core.h"
#include "cpu/ooo_core.h"
#include "util/failpoint.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "vm/trace_codec.h"

namespace bioperf::core {

namespace {

/** Warm actions, precomputed per sid like the codec's decode kinds. */
enum WarmKind : uint8_t {
    kWarmNone = 0,
    kWarmRead = 1,   ///< loads and prefetches: read access
    kWarmWrite = 2,  ///< stores: write access
    kWarmBranch = 3, ///< conditional branches: train the predictor
};

/** Uniform counter access over the two core models. */
struct CoreModel
{
    std::unique_ptr<cpu::OooCore> ooo;
    std::unique_ptr<cpu::InorderCore> inorder;

    CoreModel(const cpu::PlatformConfig &platform,
              mem::CacheHierarchy *caches,
              branch::BranchPredictor *predictor)
    {
        if (platform.core.outOfOrder)
            ooo = std::make_unique<cpu::OooCore>(platform.core, caches,
                                                 predictor);
        else
            inorder = std::make_unique<cpu::InorderCore>(
                platform.core, caches, predictor);
    }

    vm::TraceSink *sink()
    {
        return ooo ? static_cast<vm::TraceSink *>(ooo.get())
                   : inorder.get();
    }
    void reset() { ooo ? ooo->reset() : inorder->reset(); }
    uint64_t cycles() const
    {
        return ooo ? ooo->cycles() : inorder->cycles();
    }
    uint64_t instructions() const
    {
        return ooo ? ooo->instructions() : inorder->instructions();
    }
    uint64_t mispredicts() const
    {
        return ooo ? ooo->branchMispredictions()
                   : inorder->branchMispredictions();
    }
};

/** Per-shard observations, merged in shard order on the main thread. */
struct ShardResult
{
    std::vector<double> cpis; ///< one CPI per completed interval
    uint64_t measuredInstructions = 0;
    uint64_t measuredCycles = 0;
    uint64_t measuredMispredicts = 0;
    uint64_t delivered = 0;
    /** Failure that dropped this shard from the estimate. */
    util::Status status;
};

/**
 * Routing sink implementing one shard's warm/measure schedule: the
 * first @a first_warm instructions of the shard warm functionally
 * (the random phase offset), then the stream cycles through detailed
 * warm-up, detailed measurement and a functional-warm gap. Batches
 * are split at phase boundaries, so phase lengths are exact
 * regardless of batch framing.
 */
class SampleRouter : public vm::TraceSink
{
  public:
    SampleRouter(WarmupSink *warm, CoreModel *core)
        : warm_(warm), core_(core)
    {
    }

    void beginShard(ShardResult *out, uint64_t first_warm,
                    uint64_t warmup_len, uint64_t detail_len,
                    uint64_t warm_gap)
    {
        out_ = out;
        warmup_len_ = warmup_len;
        detail_len_ = detail_len;
        warm_gap_ = warm_gap;
        phase_ = Phase::Gap;
        remaining_ = first_warm;
    }

    void onInstr(const vm::DynInstr &di) override { onBatch(&di, 1); }

    void onBatch(const vm::DynInstr *batch, size_t n) override
    {
        while (n > 0) {
            while (remaining_ == 0)
                advance();
            const size_t m =
                n < remaining_ ? n : static_cast<size_t>(remaining_);
            if (phase_ == Phase::Gap)
                warm_->onBatch(batch, m);
            else
                core_->sink()->onBatch(batch, m);
            remaining_ -= m;
            batch += m;
            n -= m;
            // Close a completed measurement immediately: a shard may
            // end exactly here, and its last interval still counts.
            if (remaining_ == 0)
                advance();
        }
    }

    void onRunEnd() override
    {
        // The run boundary's scoreboard semantics apply to the core
        // whatever the phase; warming holds no per-run state.
        core_->sink()->onRunEnd();
    }

    void onGap() override
    {
        // Salvaged traces: the producers of in-flight dependencies
        // were lost with the gap, so the core drains. Warm state
        // (caches, predictor) is kept — stale but unbiased, same as
        // after any functional-warm stretch.
        core_->sink()->onGap();
    }

  private:
    enum class Phase : uint8_t { Gap, Warmup, Measure };

    void advance()
    {
        switch (phase_) {
          case Phase::Gap:
            phase_ = Phase::Warmup;
            remaining_ = warmup_len_;
            break;
          case Phase::Warmup:
            phase_ = Phase::Measure;
            remaining_ = detail_len_;
            cycles0_ = core_->cycles();
            instr0_ = core_->instructions();
            miss0_ = core_->mispredicts();
            break;
          case Phase::Measure: {
            const uint64_t d_cycles = core_->cycles() - cycles0_;
            const uint64_t d_instr = core_->instructions() - instr0_;
            if (d_instr > 0) {
                out_->cpis.push_back(
                    static_cast<double>(d_cycles) /
                    static_cast<double>(d_instr));
                out_->measuredInstructions += d_instr;
                out_->measuredCycles += d_cycles;
                out_->measuredMispredicts +=
                    core_->mispredicts() - miss0_;
            }
            phase_ = Phase::Gap;
            remaining_ = warm_gap_;
            break;
          }
        }
    }

    WarmupSink *warm_;
    CoreModel *core_;
    ShardResult *out_ = nullptr;
    uint64_t warmup_len_ = 0;
    uint64_t detail_len_ = 1;
    uint64_t warm_gap_ = 0;
    uint64_t remaining_ = 0;
    Phase phase_ = Phase::Gap;
    uint64_t cycles0_ = 0;
    uint64_t instr0_ = 0;
    uint64_t miss0_ = 0;
};

/**
 * Chunk access abstraction over the two trace homes. Instances are
 * per-worker (the file reader owns a stream position); readRange()
 * feeds chunks [begin, end) through the replayer's streaming API.
 */
class ChunkReader
{
  public:
    virtual ~ChunkReader() = default;
    virtual uint64_t startSeq(size_t idx) = 0;
    /** Feeds chunks [begin, end) into @a rep; OK on success. */
    virtual util::Status readRange(size_t begin, size_t end,
                                   vm::TraceReplayer &rep) = 0;
};

class MemoryReader final : public ChunkReader
{
  public:
    explicit MemoryReader(const vm::EncodedTrace &trace)
        : trace_(&trace)
    {
    }
    uint64_t startSeq(size_t idx) override
    {
        return trace_->chunks()[idx].startSeq;
    }
    util::Status readRange(size_t begin, size_t end,
                           vm::TraceReplayer &rep) override
    {
        for (size_t i = begin; i < end; i++)
            if (util::Status s = rep.streamChunk(trace_->chunks()[i]);
                !s.ok())
                return s;
        return {};
    }

  private:
    const vm::EncodedTrace *trace_;
};

class FileReader final : public ChunkReader
{
  public:
    util::Status open(const std::string &path)
    {
        return stream_.open(path);
    }
    uint64_t startSeq(size_t idx) override
    {
        return stream_.chunkStartSeq(idx);
    }
    util::Status readRange(size_t begin, size_t end,
                           vm::TraceReplayer &rep) override
    {
        if (util::Status s = stream_.seekToChunk(begin); !s.ok())
            return s;
        for (size_t i = begin; i < end; i++) {
            util::Status io;
            if (!stream_.next(chunk_, io))
                return io.ok() ? util::Status::corruptData(
                                     "unexpected end of chunk stream")
                               : io;
            if (util::Status s = rep.streamChunk(chunk_); !s.ok())
                return s;
        }
        return {};
    }

  private:
    TraceFileStream stream_;
    vm::EncodedTrace::Chunk chunk_; ///< reused scratch buffer
};

using ReaderFactory =
    std::function<std::unique_ptr<ChunkReader>(util::Status &)>;

/** One worker's whole simulation stack, reused across its shards. */
struct WorkerStack
{
    mem::CacheHierarchy caches;
    std::unique_ptr<branch::BranchPredictor> predictor;
    CoreModel core;
    WarmupSink warm;
    SampleRouter router;
    vm::TraceReplayer replayer;

    WorkerStack(const ir::Program &prog,
                const cpu::PlatformConfig &platform)
        : caches(platform.makeHierarchy()),
          predictor(platform.makePredictor()),
          core(platform, &caches, predictor.get()),
          warm(prog, &caches, predictor.get()),
          router(&warm, &core), replayer(prog)
    {
        replayer.addSink(&router);
    }
};

struct ShardGeometry
{
    size_t numShards = 0;
    size_t chunksPerShard = 0;
};

size_t
roundUpToKeyframe(size_t chunks, uint32_t keyframe_interval)
{
    return (chunks + keyframe_interval - 1) / keyframe_interval *
           keyframe_interval;
}

ShardGeometry
shardGeometry(size_t num_chunks, uint32_t keyframe_interval,
              uint32_t shard_chunks)
{
    ShardGeometry g;
    if (num_chunks == 0)
        return g;
    // Shards must enter the stream at keyframes.
    const size_t per = roundUpToKeyframe(
        shard_chunks == 0 ? 8u * keyframe_interval : shard_chunks,
        keyframe_interval);
    g.chunksPerShard = per;
    g.numShards = (num_chunks + per - 1) / per;
    return g;
}

/** What one shard actually decodes and how its schedule starts. */
struct ShardPlan
{
    size_t w0 = 0; ///< first decoded chunk (a keyframe)
    size_t w1 = 0; ///< one past the last decoded chunk
    /** Functional-warm instructions before the first warmup phase. */
    uint64_t firstWarm = 0;
};

/**
 * Plans shard @a shard spanning chunks [c0, c1): places the decode
 * window at a random keyframe-aligned slot inside the span and draws
 * the random phase offset. A fresh Rng (and a fixed draw order:
 * window slot first, then offset) keeps the plan a pure function of
 * (seed, shard), independent of which worker replays it.
 */
ShardPlan
planShard(const SamplingOptions &o, size_t shard, size_t c0, size_t c1,
          size_t window_chunks, uint32_t keyframe_interval)
{
    util::Rng rng(o.seed + 0x9e3779b97f4a7c15ull * (shard + 1));
    const size_t span = c1 - c0;
    const size_t slots =
        span > window_chunks
            ? (span - window_chunks) / keyframe_interval + 1
            : 1;
    ShardPlan plan;
    plan.w0 = c0 + keyframe_interval * rng.nextBelow(slots);
    plan.w1 = std::min(c1, plan.w0 + window_chunks);
    plan.firstWarm = o.minWarm + rng.nextBelow(o.interval);
    return plan;
}

SampledTimingResult
mergeShards(const std::vector<ShardResult> &results,
            uint64_t total_instructions, double clock_ghz,
            bool verified)
{
    SampledTimingResult out;
    util::RunningStats stats;
    for (const ShardResult &r : results) {
        if (!r.status.ok()) {
            out.failedShards++;
            out.shardErrors.push_back(r.status.str());
            continue;
        }
        for (double c : r.cpis)
            stats.add(c);
        out.measuredInstructions += r.measuredInstructions;
        out.measuredCycles += r.measuredCycles;
        out.measuredMispredicts += r.measuredMispredicts;
    }
    out.intervals = stats.count();
    out.shards = results.size();
    out.instructions = total_instructions;
    out.verified = verified;
    if (stats.count() > 0) {
        out.cpi = stats.mean();
        out.ipc = out.cpi > 0.0 ? 1.0 / out.cpi : 0.0;
        out.ci95 = stats.ci95();
        out.cv = stats.cv();
        out.coverage =
            total_instructions == 0
                ? 0.0
                : static_cast<double>(out.measuredInstructions) /
                      static_cast<double>(total_instructions);
        out.projectedCycles =
            out.cpi * static_cast<double>(total_instructions);
        out.seconds = out.projectedCycles / (clock_ghz * 1e9);
    }
    return out;
}

/** Full detailed replay, for traces too short to sample. */
SampledTimingResult
runExhaustive(const ir::Program &prog,
              const cpu::PlatformConfig &platform, ChunkReader &reader,
              size_t num_chunks, uint64_t total_instructions,
              bool verified)
{
    SampledTimingResult out;
    out.exhaustive = true;
    out.shards = 1;
    out.instructions = total_instructions;
    out.verified = verified;

    mem::CacheHierarchy caches = platform.makeHierarchy();
    auto predictor = platform.makePredictor();
    CoreModel core(platform, &caches, predictor.get());
    vm::TraceReplayer rep(prog);
    rep.addSink(core.sink());
    rep.beginStream(0);
    if (util::Status s = reader.readRange(0, num_chunks, rep);
        !s.ok()) {
        out.status = s.withContext("exhaustive replay");
        return out;
    }
    rep.endStream();

    out.measuredInstructions = core.instructions();
    out.measuredCycles = core.cycles();
    out.measuredMispredicts = core.mispredicts();
    if (core.cycles() > 0 && core.instructions() > 0) {
        out.cpi = static_cast<double>(core.cycles()) /
                  static_cast<double>(core.instructions());
        out.ipc = 1.0 / out.cpi;
    }
    out.coverage = 1.0;
    out.projectedCycles = static_cast<double>(core.cycles());
    out.seconds = out.projectedCycles / (platform.core.clockGhz * 1e9);
    return out;
}

SampledTimingResult
runSampled(const ir::Program &prog, const cpu::PlatformConfig &platform,
           const SamplingOptions &opts, size_t num_chunks,
           uint32_t keyframe_interval, uint64_t total_instructions,
           bool verified, const ReaderFactory &make_reader)
{
    SampledTimingResult out;
    SamplingOptions o = opts;
    if (o.detailLen == 0)
        o.detailLen = 1;
    if (o.interval < o.warmupLen + o.detailLen)
        o.interval = o.warmupLen + o.detailLen;
    const uint64_t warm_gap = o.interval - o.warmupLen - o.detailLen;

    const ShardGeometry geo =
        shardGeometry(num_chunks, keyframe_interval, o.shardChunks);
    if (geo.numShards == 0) {
        out.verified = verified;
        out.instructions = total_instructions;
        return out;
    }
    const size_t window_chunks = std::min<size_t>(
        geo.chunksPerShard,
        roundUpToKeyframe(
            o.windowChunks == 0
                ? std::max<size_t>(keyframe_interval,
                                   geo.chunksPerShard * 3 / 8)
                : o.windowChunks,
            keyframe_interval));
    std::vector<ShardResult> results(geo.numShards);

    // A failing shard is dropped, not fatal: its observations never
    // enter the estimator (per-shard state resets keep the survivors
    // independent of it), so the merged CPI stays valid — just with
    // fewer intervals behind it.
    auto runRange = [&](WorkerStack &ws, ChunkReader &reader,
                        size_t s0, size_t s1) -> util::Status {
        for (size_t s = s0; s < s1; s++) {
            if (BIOPERF_FAILPOINT("sample.shard.fail")) {
                results[s] = ShardResult{};
                results[s].status = util::Status::unavailable(
                    "fail point sample.shard.fail fired (shard " +
                    std::to_string(s) + ")");
                continue;
            }
            const size_t c0 = s * geo.chunksPerShard;
            const size_t c1 =
                std::min(num_chunks, c0 + geo.chunksPerShard);
            const ShardPlan plan = planShard(
                o, s, c0, c1, window_chunks, keyframe_interval);
            // The per-shard reset is what makes shards independent —
            // and therefore mergeable in any execution order.
            ws.caches.reset();
            ws.predictor->reset();
            ws.core.reset();
            ws.router.beginShard(&results[s], plan.firstWarm,
                                 o.warmupLen, o.detailLen, warm_gap);
            ws.replayer.beginStream(reader.startSeq(plan.w0));
            if (util::Status st =
                    reader.readRange(plan.w0, plan.w1, ws.replayer);
                !st.ok()) {
                // Decode state is undefined after a failure; discard
                // whatever the router observed mid-window.
                ws.replayer.endStream();
                results[s] = ShardResult{};
                results[s].status = st.withContext(
                    "shard " + std::to_string(s));
                continue;
            }
            results[s].delivered = ws.replayer.endStream();
        }
        return {};
    };

    unsigned threads = o.threads == 0
                           ? util::ThreadPool::defaultThreads()
                           : o.threads;
    if (threads > geo.numShards)
        threads = static_cast<unsigned>(geo.numShards);

    if (threads <= 1) {
        util::Status err;
        std::unique_ptr<ChunkReader> reader = make_reader(err);
        if (!reader) {
            out.status = std::move(err);
            return out;
        }
        WorkerStack ws(prog, platform);
        if (util::Status s = runRange(ws, *reader, 0, geo.numShards);
            !s.ok()) {
            out.status = std::move(s);
            return out;
        }
    } else {
        util::ThreadPool pool(threads);
        std::vector<std::future<util::Status>> futures;
        for (unsigned w = 0; w < threads; w++) {
            const size_t s0 = geo.numShards * w / threads;
            const size_t s1 = geo.numShards * (w + 1) / threads;
            if (s0 == s1)
                continue;
            futures.push_back(
                pool.submit([&, s0, s1]() -> util::Status {
                    util::Status err;
                    std::unique_ptr<ChunkReader> reader =
                        make_reader(err);
                    if (!reader)
                        return err;
                    WorkerStack ws(prog, platform);
                    return runRange(ws, *reader, s0, s1);
                }));
        }
        util::Status first;
        for (auto &f : futures) {
            util::Status s = f.get();
            if (!s.ok() && first.ok())
                first = std::move(s);
        }
        if (!first.ok()) {
            out.status = std::move(first);
            return out;
        }
    }

    out = mergeShards(results, total_instructions,
                      platform.core.clockGhz, verified);
    if (out.failedShards == out.shards && out.shards > 0) {
        // Nothing survived; surface the first shard's failure rather
        // than an empty estimate (and don't mask it with the
        // exhaustive fallback, which would re-run the whole trace).
        for (const ShardResult &r : results)
            if (!r.status.ok()) {
                util::Status s = r.status;
                out.status = s.withContext("every shard failed");
                break;
            }
        return out;
    }
    if (out.intervals == 0) {
        // Too short for even one completed interval anywhere: measure
        // the whole trace in detail instead of reporting nothing.
        util::Status err;
        std::unique_ptr<ChunkReader> reader = make_reader(err);
        if (!reader) {
            out.status = std::move(err);
            return out;
        }
        SampledTimingResult ex =
            runExhaustive(prog, platform, *reader, num_chunks,
                          total_instructions, verified);
        // Keep the sampled attempt's shard incidents visible: the
        // fallback covers the whole trace, but the caller still wants
        // the degradation on record (manifest failures).
        ex.failedShards = out.failedShards;
        ex.shardErrors = std::move(out.shardErrors);
        return ex;
    }
    return out;
}

} // namespace

// --- WarmupSink -------------------------------------------------------

WarmupSink::WarmupSink(const ir::Program &prog,
                       mem::CacheHierarchy *caches,
                       branch::BranchPredictor *predictor)
    : caches_(caches), predictor_(predictor)
{
    kind_of_sid_.assign(prog.sidLimit(), kWarmNone);
    for (const ir::Instr *in : vm::buildSidTable(prog)) {
        if (!in)
            continue;
        if (ir::isLoad(in->op) || in->op == ir::Opcode::Prefetch)
            kind_of_sid_[in->sid] = kWarmRead;
        else if (ir::isStore(in->op))
            kind_of_sid_[in->sid] = kWarmWrite;
        else if (in->op == ir::Opcode::Br)
            kind_of_sid_[in->sid] = kWarmBranch;
    }
}

void
WarmupSink::onInstr(const vm::DynInstr &di)
{
    onBatch(&di, 1);
}

void
WarmupSink::onBatch(const vm::DynInstr *batch, size_t n)
{
    // Same update semantics as the detailed cores' memory and branch
    // paths, minus every cycle computation — keeping warm state
    // unbiased relative to what a detailed interval would have built.
    const uint8_t *kinds = kind_of_sid_.data();
    for (size_t i = 0; i < n; i++) {
        const vm::DynInstr &di = batch[i];
        switch (kinds[di.instr->sid]) {
          case kWarmNone:
            break;
          case kWarmRead:
            caches_->access(di.addr, false);
            break;
          case kWarmWrite:
            caches_->access(di.addr, true);
            break;
          case kWarmBranch:
            predictor_->predictAndTrain(di.instr->sid, di.taken);
            break;
        }
    }
}

// --- Entry points -----------------------------------------------------

SampledTimingResult
sampleTiming(const CachedTrace &trace,
             const cpu::PlatformConfig &platform,
             const SamplingOptions &opts)
{
    ReaderFactory make_reader =
        [&trace](util::Status &) -> std::unique_ptr<ChunkReader> {
        return std::make_unique<MemoryReader>(trace.trace);
    };
    return runSampled(*trace.prog, platform, opts,
                      trace.trace.chunks().size(),
                      trace.trace.keyframeInterval(),
                      trace.trace.instructions(), trace.verified,
                      make_reader);
}

SampledFileResult
sampleTimingFile(const std::string &path,
                 const cpu::PlatformConfig &platform,
                 const SamplingOptions &opts)
{
    SampledFileResult res;
    TraceFileStream head;
    if (util::Status s = head.open(path); !s.ok()) {
        res.status = s.withContext("sampling '" + path + "'");
        return res;
    }
    res.key = head.key();
    std::unique_ptr<ir::Program> prog;
    if (util::Status s =
            buildReplayProgram(head.key(), head.sidLimit(), prog);
        !s.ok()) {
        res.status = std::move(s);
        return res;
    }
    ReaderFactory make_reader =
        [&path](util::Status &err) -> std::unique_ptr<ChunkReader> {
        auto reader = std::make_unique<FileReader>();
        err = reader->open(path);
        if (!err.ok())
            return nullptr;
        return reader;
    };
    res.result = runSampled(*prog, platform, opts, head.numChunks(),
                            head.keyframeInterval(),
                            head.instructions(), head.verified(),
                            make_reader);
    res.status = res.result.status;
    return res;
}

util::json::Value
SampledTimingResult::report() const
{
    util::json::Value v = util::json::Value::object();
    v["mode"] = "sampled";
    v["cpi"] = cpi;
    v["ipc"] = ipc;
    v["ci95"] = ci95;
    v["cv"] = cv;
    v["coverage"] = coverage;
    v["projected_cycles"] = projectedCycles;
    v["seconds"] = seconds;
    v["instructions"] = instructions;
    v["measured_instructions"] = measuredInstructions;
    v["measured_cycles"] = measuredCycles;
    v["measured_mispredicts"] = measuredMispredicts;
    v["intervals"] = intervals;
    v["shards"] = shards;
    v["failed_shards"] = failedShards;
    v["verified"] = verified;
    v["exhaustive"] = exhaustive;
    return v;
}

} // namespace bioperf::core
