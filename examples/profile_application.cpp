/**
 * @file
 * The Section 3 methodology end to end on a real application: profile
 * hmmsearch, print its Table 5-style hot-load profile, and let the
 * CandidateFinder point at the source lines worth transforming.
 *
 *   ./examples/profile_application [app-name]
 */
#include <cstdio>
#include <string>

#include "apps/app.h"
#include "core/candidate_finder.h"
#include "core/simulator.h"
#include "util/table.h"

using namespace bioperf;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "hmmsearch";
    const apps::AppInfo *app = apps::findApp(name);
    if (!app) {
        std::printf("unknown application '%s'\n", name.c_str());
        std::printf("known:");
        for (const auto &a : apps::bioperfApps())
            std::printf(" %s", a.name.c_str());
        std::printf("\n");
        return 1;
    }

    std::printf("profiling %s (%s)...\n\n", app->name.c_str(),
                app->area.c_str());

    // Step 1: whole-program characterization.
    apps::AppRun run =
        app->make(apps::Variant::Baseline, apps::Scale::Small, 7);
    const auto res = core::Simulator::characterize(run);
    std::printf("instructions executed : %llu (verified: %s)\n",
                static_cast<unsigned long long>(res.instructions),
                res.verified ? "yes" : "NO");
    std::printf("load fraction         : %.1f%%\n",
                100.0 * res.mix.loadFraction);
    std::printf("static loads for 90%%  : %zu\n",
                res.coverage.loadsFor90);
    std::printf("L1 miss rate (loads)  : %.2f%%   AMAT: %.2f cycles\n",
                100.0 * res.cache.l1LocalMissRate, res.cache.amat);
    std::printf("load-to-branch loads  : %.1f%%, their branches "
                "mispredict %.1f%%\n\n",
                100.0 * res.loadBranch.loadToBranchFraction,
                100.0 * res.loadBranch.ltbBranchMissRate);

    // Step 2: per-load profile (the Table 5 view).
    core::CandidateFinder finder;
    apps::AppRun run2 =
        app->make(apps::Variant::Baseline, apps::Scale::Small, 7);
    util::TextTable t({ "array", "function", "line", "frequency",
                        "L1 miss", "next-branch mispredict" });
    for (const auto &e : finder.profileLoads(run2, 10)) {
        t.row()
            .cell(e.region)
            .cell(e.function)
            .cell(static_cast<int64_t>(e.line))
            .cellPercent(100.0 * e.frequency, 2)
            .cellPercent(100.0 * e.l1MissRate(), 2)
            .cellPercent(100.0 * e.nextBranchMissRate(), 1);
    }
    std::printf("hottest static loads:\n%s\n", t.str().c_str());

    // Step 3: the ranked optimization candidates.
    apps::AppRun run3 =
        app->make(apps::Variant::Baseline, apps::Scale::Small, 7);
    const auto candidates = finder.findCandidates(run3);
    if (candidates.empty()) {
        std::printf("no load-scheduling candidates found (frequent "
                    "loads with hard following branches)\n");
    } else {
        std::printf("recommended load-scheduling candidates "
                    "(frequent + hard following branch):\n");
        for (const auto &e : candidates) {
            std::printf("  %s:%d  array '%s'  (%.2f%% of loads, "
                        "branch mispredicts %.1f%%)\n",
                        e.file.c_str(), e.line, e.region.c_str(),
                        100.0 * e.frequency,
                        100.0 * e.nextBranchMissRate());
        }
    }
    return 0;
}
