/**
 * @file
 * The paper's headline result in one program: build baseline and
 * load-transformed hmmsearch, prove them equivalent against the
 * golden model, and time both on the Alpha 21264 configuration.
 * Also demonstrates the automatic pass pipeline: what load hoisting
 * achieves with and without programmer alias knowledge.
 *
 *   ./examples/transform_speedup [app-name]
 */
#include <cstdio>
#include <string>

#include "apps/app.h"
#include "core/simulator.h"
#include "core/transform_pipeline.h"
#include "cpu/platforms.h"
#include "opt/load_hoist.h"

using namespace bioperf;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "hmmsearch";
    const apps::AppInfo *app = apps::findApp(name);
    if (!app || !app->transformable) {
        std::printf("'%s' is not a transformable application; pick "
                    "one of:", name.c_str());
        for (const auto &a : apps::transformableApps())
            std::printf(" %s", a.name.c_str());
        std::printf("\n");
        return 1;
    }

    // 1. Equivalence first: both variants against the golden model.
    const auto rep =
        core::TransformPipeline::analyze(*app, apps::Scale::Small, 9);
    std::printf("baseline verified   : %s\n",
                rep.baselineVerified ? "yes" : "NO");
    std::printf("transformed verified: %s\n",
                rep.transformedVerified ? "yes" : "NO");
    std::printf("static branches     : %zu -> %zu "
                "(if-conversion to cmov)\n",
                rep.baselineStaticBranches,
                rep.transformedStaticBranches);
    std::printf("transformation size : %u load sites across %u "
                "source lines\n\n",
                rep.staticLoadsConsidered, rep.linesInvolved);

    // 2. The speedup on the paper's reference machine.
    const auto alpha = cpu::alpha21264();
    const core::SpeedupResult sp = core::Simulator::speedup(
        *app, alpha, apps::Scale::Small, 9);
    const core::TimingResult &tb = sp.baseline;
    const core::TimingResult &tx = sp.transformed;
    std::printf("Alpha 21264 (3-cycle L1 hit):\n");
    std::printf("  original        : %llu cycles  (IPC %.2f, "
                "%llu mispredicts)\n",
                static_cast<unsigned long long>(tb.cycles), tb.ipc,
                static_cast<unsigned long long>(tb.mispredicts));
    std::printf("  load-transformed: %llu cycles  (IPC %.2f, "
                "%llu mispredicts)\n",
                static_cast<unsigned long long>(tx.cycles), tx.ipc,
                static_cast<unsigned long long>(tx.mispredicts));
    std::printf("  speedup         : %.1f%%\n\n",
                100.0 * (sp.speedup - 1.0));

    // 3. How far automatic hoisting gets, by oracle strength.
    for (auto mode : { opt::DisambiguationOracle::Mode::Conservative,
                       opt::DisambiguationOracle::Mode::RegionBased }) {
        apps::AppRun run =
            app->make(apps::Variant::Baseline, apps::Scale::Small, 9);
        opt::LoadHoistPass hoist{ opt::DisambiguationOracle(mode) };
        uint32_t hoisted = 0;
        for (size_t f = 0; f < run.prog->numFunctions(); f++)
            hoisted +=
                hoist.run(*run.prog, run.prog->function(f)).transformed;
        run.prog->renumber();
        const auto t = core::Simulator::time(run, alpha);
        std::printf("auto-hoist (%s): %u loads hoisted, %llu cycles, "
                    "verified: %s\n",
                    mode == opt::DisambiguationOracle::Mode::Conservative
                        ? "compiler view" : "programmer view",
                    hoisted,
                    static_cast<unsigned long long>(t.cycles),
                    t.verified ? "yes" : "NO");
    }
    std::printf("\nreading guide: the conservative oracle cannot "
                "move any load across the mc/dc/ic stores (Section "
                "2.2.2), so it only hoists store-free loads; the "
                "region oracle unlocks the rest. On this already-"
                "speculating out-of-order core, hoisting alone does "
                "not pay — the duplicated speculative loads cost "
                "instructions — which is why the paper's manual "
                "transformation also restructures the IFs so the "
                "compiler can turn them into conditional moves "
                "(compare the mispredict counts above). The in-order "
                "Itanium is where hoisting alone shines: see "
                "bench/itanium_restrict_ablation.\n");
    return 0;
}
