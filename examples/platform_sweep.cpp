/**
 * @file
 * Sweep a custom platform design space: how do window size, L1 hit
 * latency and misprediction penalty move the baseline/transformed gap
 * for one application? Shows how to assemble PlatformConfig objects
 * beyond the four built-in machines.
 *
 *   ./examples/platform_sweep [app-name]
 */
#include <cstdio>
#include <string>
#include <vector>

#include "apps/app.h"
#include "core/simulator.h"
#include "cpu/platforms.h"
#include "util/table.h"

using namespace bioperf;

namespace {

struct Config
{
    const char *label;
    uint32_t l1;
    uint32_t window;
    uint32_t penalty;
    bool ooo;
};

} // namespace

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "hmmsearch";
    const apps::AppInfo *app = apps::findApp(name);
    if (!app || !app->transformable) {
        std::printf("pick a transformable app\n");
        return 1;
    }

    std::printf("=== design-space sweep for %s ===\n\n",
                name.c_str());

    const std::vector<Config> configs = {
        { "single-cycle L1", 1, 80, 9, true },
        { "Alpha-like (reference)", 3, 80, 9, true },
        { "slow L1", 5, 80, 9, true },
        { "tiny window", 3, 8, 9, true },
        { "huge window", 3, 512, 9, true },
        { "cheap mispredicts", 3, 80, 2, true },
        { "deep pipeline", 3, 80, 25, true },
        { "in-order", 3, 1, 9, false },
    };

    // All design points are independent, so both variants of every
    // configuration run concurrently through Simulator::sweep().
    std::vector<core::SweepJob> jobs;
    for (const Config &c : configs) {
        cpu::PlatformConfig p = cpu::alpha21264();
        p.latencies.l1HitLatency = c.l1;
        p.core.windowSize = c.window;
        p.core.mispredictPenalty = c.penalty;
        p.core.outOfOrder = c.ooo;
        for (apps::Variant v : { apps::Variant::Baseline,
                                 apps::Variant::Transformed }) {
            core::SweepJob job;
            job.app = app;
            job.platform = p;
            job.variant = v;
            job.scale = apps::Scale::Small;
            job.seed = 3;
            jobs.push_back(job);
        }
    }
    const auto results = core::Simulator::sweep(jobs);

    util::TextTable t({ "configuration", "L1 lat", "window",
                        "mispredict penalty", "speedup" });
    for (size_t i = 0; i < configs.size(); i++) {
        const Config &c = configs[i];
        const core::TimingResult &tb = results[2 * i];
        const core::TimingResult &tx = results[2 * i + 1];
        const double sp = tx.cycles == 0
            ? 0.0
            : static_cast<double>(tb.cycles) /
                  static_cast<double>(tx.cycles);
        t.row()
            .cell(c.label)
            .cell(static_cast<uint64_t>(c.l1))
            .cell(static_cast<uint64_t>(c.window))
            .cell(static_cast<uint64_t>(c.penalty))
            .cellPercent(100.0 * (sp - 1.0), 1);
    }

    std::printf("%s\n", t.str().c_str());
    std::printf("reading guide: the benefit scales with L1 hit "
                "latency and misprediction penalty (the two terms of "
                "the paper's exposed-latency mechanism), and neither "
                "a huge window nor a tiny one makes the baseline's "
                "load-to-branch chains free.\n");
    return 0;
}
