/**
 * @file
 * Sweep a custom platform design space: how do window size, L1 hit
 * latency and misprediction penalty move the baseline/transformed gap
 * for one application? Shows how to assemble PlatformConfig objects
 * beyond the four built-in machines.
 *
 *   ./examples/platform_sweep [app-name]
 */
#include <cstdio>
#include <string>

#include "apps/app.h"
#include "core/simulator.h"
#include "cpu/platforms.h"
#include "util/table.h"

using namespace bioperf;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "hmmsearch";
    const apps::AppInfo *app = apps::findApp(name);
    if (!app || !app->transformable) {
        std::printf("pick a transformable app\n");
        return 1;
    }

    std::printf("=== design-space sweep for %s ===\n\n",
                name.c_str());

    util::TextTable t({ "configuration", "L1 lat", "window",
                        "mispredict penalty", "speedup" });
    auto add = [&](const char *label, uint32_t l1, uint32_t window,
                   uint32_t penalty, bool ooo) {
        cpu::PlatformConfig p = cpu::alpha21264();
        p.latencies.l1HitLatency = l1;
        p.core.windowSize = window;
        p.core.mispredictPenalty = penalty;
        p.core.outOfOrder = ooo;
        const double sp = core::Simulator::speedup(
            *app, p, apps::Scale::Small, 3);
        t.row()
            .cell(label)
            .cell(static_cast<uint64_t>(l1))
            .cell(static_cast<uint64_t>(window))
            .cell(static_cast<uint64_t>(penalty))
            .cellPercent(100.0 * (sp - 1.0), 1);
    };

    add("single-cycle L1", 1, 80, 9, true);
    add("Alpha-like (reference)", 3, 80, 9, true);
    add("slow L1", 5, 80, 9, true);
    add("tiny window", 3, 8, 9, true);
    add("huge window", 3, 512, 9, true);
    add("cheap mispredicts", 3, 80, 2, true);
    add("deep pipeline", 3, 80, 25, true);
    add("in-order", 3, 1, 9, false);

    std::printf("%s\n", t.str().c_str());
    std::printf("reading guide: the benefit scales with L1 hit "
                "latency and misprediction penalty (the two terms of "
                "the paper's exposed-latency mechanism), and neither "
                "a huge window nor a tiny one makes the baseline's "
                "load-to-branch chains free.\n");
    return 0;
}
