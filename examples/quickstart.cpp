/**
 * @file
 * Quickstart: build a tiny kernel with the IR DSL, run it through the
 * interpreter, and attach analysis sinks — the five-minute tour of
 * the library's moving parts.
 *
 *   ./examples/quickstart
 */
#include <cstdio>

#include "branch/predictors.h"
#include "cpu/ooo_core.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "mem/hierarchy.h"
#include "profile/instruction_mix.h"
#include "profile/load_branch.h"
#include "util/rng.h"
#include "vm/interpreter.h"

using namespace bioperf;

int
main()
{
    // 1. Express a kernel in the builder DSL. This one is the paper's
    //    archetype: a load whose value immediately decides a branch.
    ir::Program prog("quickstart");
    ir::FunctionBuilder b(prog, "count_positives", "quickstart.c");
    const ir::Value n = b.param("n");
    const ir::ArrayRef data = b.intArray("data", 4096);
    auto count = b.var("count");
    auto i = b.var("i");
    b.assign(count, int64_t(0));
    b.forLoop(i, b.constI(0), n - 1, [&] {
        b.line(7);
        const ir::Value v = b.ld(data, i); // load ...
        b.ifThen(v > 0, [&] {              // ... to branch
            b.assign(count, ir::Value(count) + 1);
        });
    });
    const ir::ArrayRef out = b.longArray("out", 1);
    b.st(out, 0, count);
    ir::Function &fn = b.finish();

    std::printf("--- the kernel, as RISC-style IR ---\n%s\n",
                ir::toString(prog, fn).c_str());

    // 2. Give it inputs and run it with analysis sinks attached.
    vm::Interpreter interp(prog);
    vm::ArrayView<int32_t> view(interp.memory(),
                                prog.region(data.region));
    util::Rng rng(1);
    for (uint64_t k = 0; k < 4096; k++)
        view.set(k, static_cast<int32_t>(rng.nextRange(-50, 50)));

    profile::InstructionMixProfiler mix;
    profile::LoadBranchProfiler chains;
    mem::CacheHierarchy caches = mem::CacheHierarchy::referenceConfig();
    auto predictor = branch::makePredictor("hybrid");
    cpu::CoreConfig core_cfg; // a generic 4-wide out-of-order core
    cpu::OooCore core(core_cfg, &caches, predictor.get());

    interp.addSink(&mix);
    interp.addSink(&chains);
    interp.addSink(&core);
    interp.run(fn, { 4096 });

    vm::ArrayView<int64_t> out_view(interp.memory(),
                                    prog.region(out.region));
    std::printf("--- functional result ---\n");
    std::printf("positives found: %lld of 4096\n\n",
                static_cast<long long>(out_view.get(0)));

    std::printf("--- what the analysis stack saw ---\n");
    std::printf("instructions: %llu (%.1f%% loads, %.1f%% branches)\n",
                static_cast<unsigned long long>(mix.total()),
                100.0 * mix.loadFraction(),
                100.0 * mix.branchFraction());
    std::printf("loads feeding branches: %.1f%% "
                "(the paper's load-to-branch pattern)\n",
                100.0 * chains.loadToBranchFraction());
    std::printf("those branches mispredict: %.1f%%\n",
                100.0 * chains.ltbBranchMissRate());
    std::printf("simulated: %llu cycles, IPC %.2f, %llu mispredicts\n",
                static_cast<unsigned long long>(core.cycles()),
                core.ipc(),
                static_cast<unsigned long long>(
                    core.branchMispredictions()));
    return 0;
}
